package sweep

import (
	"context"
	"testing"

	"optspeed/internal/core"
)

// batchedAllocSpace is the same shape the optbench speedup_batched
// benchmark sweeps: a dense procs axis against every machine class.
func batchedAllocSpace() Space {
	procs := make([]int, 64)
	for i := range procs {
		procs[i] = i + 1
	}
	return Space{
		Op:       OpSpeedup,
		Ns:       []int{256},
		Stencils: []string{"5-point"},
		Shapes:   []string{"strip", "square"},
		Machines: []core.MachineSpec{
			{Type: "hypercube"}, {Type: "mesh"}, {Type: "sync-bus"},
			{Type: "async-bus"}, {Type: "full-async-bus"}, {Type: "banyan"},
		},
		Procs: procs,
	}
}

// TestBatchedSweepAllocBudget pins the cold batched speedup path's
// allocation count: 768 specs across 12 procs groups on a fresh engine
// must stay within a small constant per group — the putBatch cache
// slab, the scratch/chunk pool misses, SpeedupBatch's internal curve
// buffers, map growth as the cache fills, and the collected result
// slice — nowhere near the one-allocation-per-cached-result cost the
// slab insert replaced. The budget (500, vs ~2.6k before the zero-copy
// pipeline) leaves head-room for pool-cleared reruns under GC pressure
// while still failing loudly on any per-result regression.
func TestBatchedSweepAllocBudget(t *testing.T) {
	sp := batchedAllocSpace()
	ctx := context.Background()
	// One throwaway run warms the package pools so the measurement sees
	// the steady state a serving process lives in.
	if _, err := New(Options{Workers: 1}).RunSpace(ctx, sp); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		eng := New(Options{Workers: 1})
		results, err := eng.RunSpace(ctx, sp)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != sp.Size() {
			t.Fatalf("got %d results, want %d", len(results), sp.Size())
		}
	})
	if allocs > 500 {
		t.Fatalf("cold batched sweep allocates %.0f (%d specs), budget is 500", allocs, sp.Size())
	}
}

// TestChunkStreamRecycleRoundTrip drives the chunked stream API the way
// the jobs runner does — consume, copy nothing, recycle — and checks
// every result arrives exactly once with its submission index intact.
func TestChunkStreamRecycleRoundTrip(t *testing.T) {
	eng := New(Options{Workers: 4})
	sp := Space{
		Ns:       []int{64, 128},
		Stencils: []string{"5-point", "9-point"},
		Shapes:   []string{"strip", "square"},
		Machines: []core.MachineSpec{{Type: "sync-bus"}, {Type: "mesh"}},
	}
	ch, total, err := eng.StreamSpaceChunks(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if total != sp.Size() {
		t.Fatalf("total %d, want %d", total, sp.Size())
	}
	seen := make([]bool, total)
	for c := range ch {
		for _, r := range c.Results {
			if r.Index < 0 || r.Index >= total || seen[r.Index] {
				t.Fatalf("bad or duplicate index %d", r.Index)
			}
			seen[r.Index] = true
			if r.Err != nil || r.Value <= 0 {
				t.Fatalf("bad result %+v", r)
			}
		}
		eng.Recycle(c)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("index %d never arrived", i)
		}
	}
}

// TestChunkStreamBatchedMatchesRun holds the chunked batched-speedup
// stream to the same values as the ordered Run path.
func TestChunkStreamBatchedMatchesRun(t *testing.T) {
	sp := batchedAllocSpace()
	want, err := New(Options{}).RunSpace(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Options{})
	ch, total, err := eng.StreamSpaceChunks(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]Result, total)
	n := 0
	for c := range ch {
		for _, r := range c.Results {
			got[r.Index] = r
			n++
		}
		eng.Recycle(c)
	}
	if n != total {
		t.Fatalf("streamed %d results, want %d", n, total)
	}
	for i := range want {
		if got[i].Value != want[i].Value || (got[i].Err == nil) != (want[i].Err == nil) {
			t.Fatalf("result %d diverges: stream %+v vs run %+v", i, got[i], want[i])
		}
	}
}
