// Package partition implements the domain decompositions studied by the
// Nicol-Willard model: strip partitions and (nearly) square rectangular
// partitions of an n×n grid, together with the geometric quantities the
// performance model consumes — perimeter counts k(P,S), boundary word
// volumes, and the "working rectangle" approximation of square partitions
// with its area/perimeter error analysis (paper §3, Figs. 2, 4, 5, 6).
package partition

import (
	"fmt"

	"optspeed/internal/stencil"
)

// Shape identifies the partition geometry.
type Shape int

const (
	// Strip partitions are bands of contiguous full rows (paper Fig. 4).
	Strip Shape = iota
	// Square partitions are near-square rectangles arranged in a grid
	// over the domain (paper Figs. 2 and 5).
	Square
)

// Shapes returns both partition shapes in paper order.
func Shapes() []Shape { return []Shape{Strip, Square} }

// String returns "strip" or "square".
func (s Shape) String() string {
	switch s {
	case Strip:
		return "strip"
	case Square:
		return "square"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// Valid reports whether s is a defined shape.
func (s Shape) Valid() bool { return s == Strip || s == Square }

// Perimeters returns k(P, S): the number of partition perimeters that must
// be communicated per iteration when shape s is used with stencil st
// (paper §3). A strip only has row-boundaries, so its count is the
// stencil's row radius; a square partition is bounded in both directions,
// so its count is the Chebyshev radius.
//
// For the paper's stencils this gives the table in §3:
//
//	k(strip, 5-point)  = 1    k(square, 5-point)  = 1
//	k(strip, 9-point)  = 1    k(square, 9-point)  = 1
//	k(strip, 9-star)   = 2    k(square, 9-star)   = 2
//	k(strip, 13-point) = 2    k(square, 13-point) = 2
func (s Shape) Perimeters(st stencil.Stencil) int {
	switch s {
	case Strip:
		return st.RowRadius()
	case Square:
		return st.ChebyshevRadius()
	default:
		panic(fmt.Sprintf("partition: Perimeters on invalid shape %d", int(s)))
	}
}

// BoundaryWords returns the per-iteration one-way communication volume, in
// words (grid-point values), of a single partition of the given shape: the
// number of words a partition must read from its neighbors (equal, under
// the paper's symmetric-exchange assumption, to the number it writes).
//
// For a strip of an n-wide domain, k perimeters of n points lie on each of
// the two cut sides: 2·n·k words. For a square with side s, k perimeters of
// s points lie on each of the four sides: 4·s·k words. (Corner words needed
// by diagonal stencils are ignored, as in the paper's footnote in §6.1.)
func (s Shape) BoundaryWords(st stencil.Stencil, n, side int) int {
	k := s.Perimeters(st)
	switch s {
	case Strip:
		return 2 * n * k
	case Square:
		return 4 * side * k
	default:
		panic(fmt.Sprintf("partition: BoundaryWords on invalid shape %d", int(s)))
	}
}

// MinArea returns the smallest admissible partition area for shape s on an
// n×n grid: a strip is at least one full row (n points), a square at least
// a single point.
func (s Shape) MinArea(n int) int {
	switch s {
	case Strip:
		return n
	case Square:
		return 1
	default:
		panic(fmt.Sprintf("partition: MinArea on invalid shape %d", int(s)))
	}
}
