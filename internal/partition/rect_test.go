package partition

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := Rect{H: 4, W: 8}
	if r.Area() != 32 {
		t.Errorf("Area = %d", r.Area())
	}
	if r.Perimeter() != 24 {
		t.Errorf("Perimeter = %d", r.Perimeter())
	}
	if r.AspectRatio() != 2 {
		t.Errorf("AspectRatio = %g", r.AspectRatio())
	}
	if (Rect{H: 8, W: 4}).AspectRatio() != 2 {
		t.Error("AspectRatio not symmetric")
	}
	if (Rect{}).AspectRatio() != 0 {
		t.Error("degenerate AspectRatio != 0")
	}
	if r.String() != "4x8" {
		t.Errorf("String = %q", r.String())
	}
}

func TestDivisors(t *testing.T) {
	got := Divisors(12)
	want := []int{1, 2, 3, 4, 6, 12}
	if len(got) != len(want) {
		t.Fatalf("Divisors(12) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Divisors(12) = %v, want %v", got, want)
		}
	}
	if Divisors(0) != nil {
		t.Error("Divisors(0) != nil")
	}
	if got := Divisors(1); len(got) != 1 || got[0] != 1 {
		t.Errorf("Divisors(1) = %v", got)
	}
}

// Property: every divisor divides n, the list is sorted and complete.
func TestDivisorsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func() bool {
		n := 1 + rng.Intn(2000)
		ds := Divisors(n)
		if !sort.IntsAreSorted(ds) {
			return false
		}
		set := map[int]bool{}
		for _, d := range ds {
			if d < 1 || n%d != 0 || set[d] {
				return false
			}
			set[d] = true
		}
		for d := 1; d <= n; d++ {
			if n%d == 0 && !set[d] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStripHeights(t *testing.T) {
	hs := StripHeights(8)
	// q=1→8; q=2→4; q=3→⌊8/3⌋=2,⌈⌉=3; q=4→2; q=5..7→1,2; q=8→1.
	want := []int{1, 2, 3, 4, 8}
	if len(hs) != len(want) {
		t.Fatalf("StripHeights(8) = %v, want %v", hs, want)
	}
	for i := range want {
		if hs[i] != want[i] {
			t.Fatalf("StripHeights(8) = %v, want %v", hs, want)
		}
	}
	if StripHeights(0) != nil {
		t.Error("StripHeights(0) != nil")
	}
}

// Property: every reported height is realized by some strip decomposition
// and heights are sorted unique.
func TestStripHeightsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		n := 1 + rng.Intn(300)
		hs := StripHeights(n)
		if !sort.IntsAreSorted(hs) {
			return false
		}
		for i := 1; i < len(hs); i++ {
			if hs[i] == hs[i-1] {
				return false
			}
		}
		realized := map[int]bool{}
		for q := 1; q <= n; q++ {
			bands, err := DecomposeStrips(n, q)
			if err != nil {
				return false
			}
			for _, b := range bands {
				realized[b.Rows] = true
			}
		}
		if len(realized) != len(hs) {
			return false
		}
		for _, h := range hs {
			if !realized[h] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLegalRectanglesSortedAndLegal(t *testing.T) {
	n := 64
	rects := LegalRectangles(n)
	if len(rects) == 0 {
		t.Fatal("no legal rectangles")
	}
	if want := n * len(Divisors(n)); len(rects) != want {
		t.Fatalf("got %d rects, want %d", len(rects), want)
	}
	prevArea := 0
	for _, r := range rects {
		if r.H < 1 || r.H > n {
			t.Fatalf("rect %v height out of range", r)
		}
		if n%r.W != 0 {
			t.Fatalf("rect %v width does not divide n", r)
		}
		if r.Area() < prevArea {
			t.Fatal("rects not sorted by area")
		}
		prevArea = r.Area()
	}
}

func TestDecomposeBlocks(t *testing.T) {
	blocks, err := DecomposeBlocks(8, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 4 {
		t.Fatalf("got %d blocks, want 4", len(blocks))
	}
	area := 0
	for i, b := range blocks {
		if b.Index != i {
			t.Errorf("block %d has index %d", i, b.Index)
		}
		area += b.Area()
	}
	if area != 64 {
		t.Errorf("blocks cover %d points, want 64", area)
	}
}

func TestDecomposeBlocksErrors(t *testing.T) {
	if _, err := DecomposeBlocks(8, 2, 3); err == nil {
		t.Error("width not dividing n accepted")
	}
	if _, err := DecomposeBlocks(8, 0, 4); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := DecomposeBlocks(8, 2, 0); err == nil {
		t.Error("w=0 accepted")
	}
}

// Property: blocks tile the grid exactly — every cell covered once.
func TestDecomposeBlocksProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func() bool {
		n := 2 + rng.Intn(60)
		divs := Divisors(n)
		w := divs[rng.Intn(len(divs))]
		q := 1 + rng.Intn(n)
		blocks, err := DecomposeBlocks(n, q, w)
		if err != nil {
			return false
		}
		covered := make([][]int, n)
		for i := range covered {
			covered[i] = make([]int, n)
		}
		for _, b := range blocks {
			for i := b.Row0; i < b.Row0+b.Rows; i++ {
				for j := b.Col0; j < b.Col0+b.Cols; j++ {
					if i < 0 || i >= n || j < 0 || j >= n {
						return false
					}
					covered[i][j]++
				}
			}
		}
		for i := range covered {
			for j := range covered[i] {
				if covered[i][j] != 1 {
					return false
				}
			}
		}
		return len(blocks) == q*(n/w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
