package partition

import "fmt"

// Band is one strip partition: a contiguous band of full rows of the grid.
// Rows are numbered 0..n-1; the band covers rows [Row0, Row0+Rows).
type Band struct {
	Index int // partition index, 0..P-1, top to bottom
	Row0  int // first row covered
	Rows  int // number of rows covered
}

// Area returns the number of grid points in the band on an n-wide grid.
func (b Band) Area(n int) int { return b.Rows * n }

// DecomposeStrips cuts an n×n grid into p horizontal strips using the
// paper's rule (§3): writing n = k·p + r with 0 ≤ r < p, the first r
// partitions receive k+1 contiguous rows and the remaining p−r receive k
// rows. Every strip has the same number of communicating boundaries as in
// the equal-work case (paper Fig. 4).
//
// It returns an error unless 1 ≤ p ≤ n.
func DecomposeStrips(n, p int) ([]Band, error) {
	if n < 1 {
		return nil, fmt.Errorf("partition: grid size n=%d must be positive", n)
	}
	if p < 1 || p > n {
		return nil, fmt.Errorf("partition: strip count p=%d out of range [1, %d]", p, n)
	}
	k, r := n/p, n%p
	bands := make([]Band, p)
	row := 0
	for i := range bands {
		rows := k
		if i < r {
			rows++
		}
		bands[i] = Band{Index: i, Row0: row, Rows: rows}
		row += rows
	}
	return bands, nil
}

// StripImbalance returns the ratio of the largest strip area to the ideal
// n²/p for the paper's decomposition rule: 1 when p divides n, otherwise
// slightly above 1. It quantifies the load imbalance the model ignores by
// treating partitions as equal.
func StripImbalance(n, p int) float64 {
	k, r := n/p, n%p
	maxRows := k
	if r > 0 {
		maxRows = k + 1
	}
	ideal := float64(n) / float64(p)
	return float64(maxRows) / ideal
}

// NeighborCount returns the number of strips band i exchanges boundaries
// with, for a decomposition into p strips with constant (Dirichlet)
// physical boundary values: interior strips have 2 neighbors, the first and
// last have 1, and a single strip has none.
func NeighborCount(i, p int) int {
	if p <= 1 {
		return 0
	}
	if i == 0 || i == p-1 {
		return 1
	}
	return 2
}
