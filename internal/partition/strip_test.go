package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDecomposeStripsExact(t *testing.T) {
	bands, err := DecomposeStrips(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(bands) != 4 {
		t.Fatalf("got %d bands, want 4", len(bands))
	}
	for i, b := range bands {
		if b.Rows != 3 {
			t.Errorf("band %d has %d rows, want 3", i, b.Rows)
		}
	}
}

// TestDecomposeStripsPaperRule checks the §3 rule: with n = k·p + r, the
// first r partitions receive k+1 rows, the rest k rows.
func TestDecomposeStripsPaperRule(t *testing.T) {
	bands, err := DecomposeStrips(10, 4) // 10 = 2·4 + 2
	if err != nil {
		t.Fatal(err)
	}
	wantRows := []int{3, 3, 2, 2}
	for i, b := range bands {
		if b.Rows != wantRows[i] {
			t.Errorf("band %d: rows=%d, want %d", i, b.Rows, wantRows[i])
		}
	}
}

func TestDecomposeStripsErrors(t *testing.T) {
	if _, err := DecomposeStrips(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := DecomposeStrips(8, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := DecomposeStrips(8, 9); err == nil {
		t.Error("p>n accepted")
	}
}

// Property: strips exactly tile the rows — contiguous, disjoint, covering,
// with row counts differing by at most one.
func TestDecomposeStripsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		n := 1 + rng.Intn(500)
		p := 1 + rng.Intn(n)
		bands, err := DecomposeStrips(n, p)
		if err != nil || len(bands) != p {
			return false
		}
		row := 0
		minRows, maxRows := n+1, 0
		for i, b := range bands {
			if b.Index != i || b.Row0 != row || b.Rows < 1 {
				return false
			}
			row += b.Rows
			if b.Rows < minRows {
				minRows = b.Rows
			}
			if b.Rows > maxRows {
				maxRows = b.Rows
			}
			if b.Area(n) != b.Rows*n {
				return false
			}
		}
		return row == n && maxRows-minRows <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStripImbalance(t *testing.T) {
	if got := StripImbalance(12, 4); got != 1 {
		t.Errorf("imbalance(12,4) = %g, want 1", got)
	}
	got := StripImbalance(10, 4) // max rows 3 vs ideal 2.5
	if want := 3.0 / 2.5; got != want {
		t.Errorf("imbalance(10,4) = %g, want %g", got, want)
	}
}

func TestNeighborCount(t *testing.T) {
	if NeighborCount(0, 1) != 0 {
		t.Error("single strip has neighbors")
	}
	if NeighborCount(0, 4) != 1 || NeighborCount(3, 4) != 1 {
		t.Error("edge strips should have 1 neighbor")
	}
	if NeighborCount(1, 4) != 2 || NeighborCount(2, 4) != 2 {
		t.Error("interior strips should have 2 neighbors")
	}
}
