package partition

import (
	"fmt"
	"math"
	"sort"
)

// DefaultSquareTolerance is the paper's 5% rule (§3): a legal rectangle of
// area A is "sufficiently square-like" when its perimeter is within 5% of
// 4√A, the perimeter of the true square of the same area.
const DefaultSquareTolerance = 0.05

// WorkingSet is the collection of working rectangles for an n×n grid: for
// each achievable legal-rectangle area, the minimum-perimeter legal
// rectangle of that area, retained only when it passes the square-likeness
// tolerance (paper §3). Not every area has a working rectangle.
type WorkingSet struct {
	N         int
	Tolerance float64
	rects     []Rect // sorted by area, unique areas
}

// NewWorkingSet computes the working rectangles of an n×n grid with the
// paper's 5% tolerance.
func NewWorkingSet(n int) (*WorkingSet, error) {
	return NewWorkingSetTol(n, DefaultSquareTolerance)
}

// NewWorkingSetTol computes the working rectangles with an explicit
// square-likeness tolerance (fraction, e.g. 0.05).
func NewWorkingSetTol(n int, tol float64) (*WorkingSet, error) {
	if n < 1 {
		return nil, fmt.Errorf("partition: grid size n=%d must be positive", n)
	}
	if tol < 0 {
		return nil, fmt.Errorf("partition: tolerance %g must be non-negative", tol)
	}
	byArea := make(map[int]Rect)
	for _, r := range LegalRectangles(n) {
		best, ok := byArea[r.Area()]
		if !ok || r.Perimeter() < best.Perimeter() {
			byArea[r.Area()] = r
		}
	}
	rects := make([]Rect, 0, len(byArea))
	for _, r := range byArea {
		ideal := 4 * math.Sqrt(float64(r.Area()))
		if float64(r.Perimeter()) <= (1+tol)*ideal {
			rects = append(rects, r)
		}
	}
	sort.Slice(rects, func(a, b int) bool { return rects[a].Area() < rects[b].Area() })
	return &WorkingSet{N: n, Tolerance: tol, rects: rects}, nil
}

// Rects returns the working rectangles sorted by ascending area.
func (ws *WorkingSet) Rects() []Rect {
	out := make([]Rect, len(ws.rects))
	copy(out, ws.rects)
	return out
}

// Len returns the number of working rectangles.
func (ws *WorkingSet) Len() int { return len(ws.rects) }

// Nearest returns the working rectangle whose area is closest to the
// target area (ties broken toward the smaller area, matching a
// conservative processor count), and false when the set is empty or the
// target is not positive.
func (ws *WorkingSet) Nearest(targetArea float64) (Rect, bool) {
	if len(ws.rects) == 0 || targetArea <= 0 {
		return Rect{}, false
	}
	i := sort.Search(len(ws.rects), func(i int) bool {
		return float64(ws.rects[i].Area()) >= targetArea
	})
	switch i {
	case 0:
		return ws.rects[0], true
	case len(ws.rects):
		return ws.rects[len(ws.rects)-1], true
	}
	lo, hi := ws.rects[i-1], ws.rects[i]
	if targetArea-float64(lo.Area()) <= float64(hi.Area())-targetArea {
		return lo, true
	}
	return hi, true
}

// ApproxError holds the relative approximation error incurred by snapping
// an ideal square partition of area A to the nearest working rectangle
// (paper Fig. 6).
type ApproxError struct {
	TargetArea int     // ideal square area A
	Rect       Rect    // chosen working rectangle
	AreaErr    float64 // |rect area − A| / A                (Fig. 6a)
	PerimErr   float64 // |rect perimeter − 4√A| / 4√A        (Fig. 6b)
}

// Errors computes the Fig. 6 error pair for a single target area.
func (ws *WorkingSet) Errors(targetArea int) (ApproxError, bool) {
	r, ok := ws.Nearest(float64(targetArea))
	if !ok {
		return ApproxError{}, false
	}
	a := float64(targetArea)
	idealPerim := 4 * math.Sqrt(a)
	return ApproxError{
		TargetArea: targetArea,
		Rect:       r,
		AreaErr:    math.Abs(float64(r.Area())-a) / a,
		PerimErr:   math.Abs(float64(r.Perimeter())-idealPerim) / idealPerim,
	}, true
}

// ErrorSweep computes Fig. 6 errors for every even target area in
// [minArea, maxArea] (the paper plots every even A in [1024, 16384] on the
// 256×256 grid, i.e. decompositions using 4 to 64 processors).
func (ws *WorkingSet) ErrorSweep(minArea, maxArea int) []ApproxError {
	var out []ApproxError
	start := minArea
	if start%2 != 0 {
		start++
	}
	for a := start; a <= maxArea; a += 2 {
		if e, ok := ws.Errors(a); ok {
			out = append(out, e)
		}
	}
	return out
}

// RealizableProcCounts returns the sorted set of processor counts
// achievable with near-square decompositions: round(n/h)·(n/w) over the
// working rectangles. The paper's §3 remark — square partitions
// "reduc[e] substantially the number of feasible domain decompositions
// (and hence freedom in choosing the number of processors)" — is this
// set's sparseness relative to strips (which realize every count 1..n).
func (ws *WorkingSet) RealizableProcCounts() []int {
	seen := map[int]bool{}
	for _, r := range ws.rects {
		q := int(math.Round(float64(ws.N) / float64(r.H)))
		if q < 1 {
			q = 1
		}
		if q > ws.N {
			q = ws.N
		}
		seen[q*(ws.N/r.W)] = true
	}
	counts := make([]int, 0, len(seen))
	for c := range seen {
		counts = append(counts, c)
	}
	sort.Ints(counts)
	return counts
}

// SnapSquare maps an ideal (real-valued) square partition area to a
// realizable decomposition: the nearest working rectangle and the number
// of processors the corresponding grid-of-blocks decomposition uses. The
// processor count is round(n/h)·(n/w) — the strip count nearest the
// rectangle height times the exact column count.
func (ws *WorkingSet) SnapSquare(targetArea float64) (r Rect, procs int, ok bool) {
	r, ok = ws.Nearest(targetArea)
	if !ok {
		return Rect{}, 0, false
	}
	q := int(math.Round(float64(ws.N) / float64(r.H)))
	if q < 1 {
		q = 1
	}
	if q > ws.N {
		q = ws.N
	}
	return r, q * (ws.N / r.W), true
}
