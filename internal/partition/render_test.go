package partition

import (
	"strings"
	"testing"
)

func TestRenderBands(t *testing.T) {
	bands, err := DecomposeStrips(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	art, err := RenderBands(4, bands)
	if err != nil {
		t.Fatal(err)
	}
	want := "0 0 0 0\n0 0 0 0\n1 1 1 1\n1 1 1 1\n"
	if art != want {
		t.Errorf("RenderBands =\n%swant\n%s", art, want)
	}
}

func TestRenderBandsErrors(t *testing.T) {
	if _, err := RenderBands(4, []Band{{Index: 0, Row0: 0, Rows: 2}}); err == nil {
		t.Error("uncovered rows accepted")
	}
	if _, err := RenderBands(2, []Band{{Index: 0, Row0: 0, Rows: 5}}); err == nil {
		t.Error("out-of-range band accepted")
	}
}

func TestRenderBlocks(t *testing.T) {
	blocks, err := DecomposeBlocks(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	art, err := RenderBlocks(4, blocks)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines %d:\n%s", len(lines), art)
	}
	if lines[0] != "0 0 1 1" || lines[3] != "2 2 3 3" {
		t.Errorf("unexpected art:\n%s", art)
	}
}

func TestRenderBlocksErrors(t *testing.T) {
	if _, err := RenderBlocks(4, nil); err == nil {
		t.Error("empty cover accepted")
	}
	if _, err := RenderBlocks(2, []Block{{Rows: 9, Cols: 9}}); err == nil {
		t.Error("out-of-range block accepted")
	}
}

func TestCellGlyphCycles(t *testing.T) {
	if cellGlyph(0) != '0' || cellGlyph(10) != 'a' {
		t.Error("glyph mapping")
	}
	// Wraps without panicking for large ids.
	_ = cellGlyph(1000)
}
