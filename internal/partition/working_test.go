package partition

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewWorkingSetValidation(t *testing.T) {
	if _, err := NewWorkingSet(0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewWorkingSetTol(8, -0.1); err == nil {
		t.Error("negative tolerance accepted")
	}
}

// TestWorkingSetSquareLike: every working rectangle satisfies the 5% rule
// and is the minimum-perimeter representative of its area.
func TestWorkingSetSquareLike(t *testing.T) {
	for _, n := range []int{64, 128, 256} {
		ws, err := NewWorkingSet(n)
		if err != nil {
			t.Fatal(err)
		}
		if ws.Len() == 0 {
			t.Fatalf("n=%d: empty working set", n)
		}
		seen := map[int]bool{}
		for _, r := range ws.Rects() {
			if seen[r.Area()] {
				t.Fatalf("n=%d: duplicate area %d", n, r.Area())
			}
			seen[r.Area()] = true
			ideal := 4 * math.Sqrt(float64(r.Area()))
			if float64(r.Perimeter()) > 1.05*ideal {
				t.Errorf("n=%d: rect %v perimeter %d exceeds 5%% of %g",
					n, r, r.Perimeter(), ideal)
			}
		}
	}
}

// TestWorkingSetContainsPerfectSquares: every realizable h×h with h a
// divisor-height must be a working rectangle (its perimeter error is 0).
func TestWorkingSetContainsPerfectSquares(t *testing.T) {
	n := 256
	ws, err := NewWorkingSet(n)
	if err != nil {
		t.Fatal(err)
	}
	areas := map[int]Rect{}
	for _, r := range ws.Rects() {
		areas[r.Area()] = r
	}
	heights := map[int]bool{}
	for _, h := range StripHeights(n) {
		heights[h] = true
	}
	for _, w := range Divisors(n) {
		if !heights[w] {
			continue
		}
		r, ok := areas[w*w]
		if !ok {
			t.Errorf("square %dx%d missing from working set", w, w)
			continue
		}
		if r.Perimeter() > 4*w {
			t.Errorf("area %d: working rect %v beats no square", w*w, r)
		}
	}
}

func TestNearest(t *testing.T) {
	ws, err := NewWorkingSet(64)
	if err != nil {
		t.Fatal(err)
	}
	rects := ws.Rects()
	first, last := rects[0], rects[len(rects)-1]
	if got, ok := ws.Nearest(0.5); !ok || got != first {
		t.Errorf("Nearest(0.5) = %v, %v", got, ok)
	}
	if got, ok := ws.Nearest(1e9); !ok || got != last {
		t.Errorf("Nearest(1e9) = %v, %v", got, ok)
	}
	if _, ok := ws.Nearest(-1); ok {
		t.Error("Nearest(-1) ok")
	}
	// Exact hit returns the exact rect.
	mid := rects[len(rects)/2]
	if got, ok := ws.Nearest(float64(mid.Area())); !ok || got.Area() != mid.Area() {
		t.Errorf("Nearest(exact %d) = %v, %v", mid.Area(), got, ok)
	}
}

// Property: Nearest returns a rectangle minimizing |area − target| among
// the working set.
func TestNearestProperty(t *testing.T) {
	ws, err := NewWorkingSet(96)
	if err != nil {
		t.Fatal(err)
	}
	rects := ws.Rects()
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		target := rng.Float64() * 96 * 96 * 1.2
		if target <= 0 {
			target = 1
		}
		got, ok := ws.Nearest(target)
		if !ok {
			return false
		}
		best := math.Inf(1)
		for _, r := range rects {
			if d := math.Abs(float64(r.Area()) - target); d < best {
				best = d
			}
		}
		return math.Abs(float64(got.Area())-target) == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// fig6Stats summarizes an error sweep: the fraction of samples whose area
// error is below 3% and whose perimeter error is below 6%, plus maxima.
func fig6Stats(errs []ApproxError) (fracArea3, fracPerim6, maxArea, maxPerim float64) {
	var okA, okP int
	for _, e := range errs {
		if e.AreaErr < 0.03 {
			okA++
		}
		if e.PerimErr < 0.06 {
			okP++
		}
		if e.AreaErr > maxArea {
			maxArea = e.AreaErr
		}
		if e.PerimErr > maxPerim {
			maxPerim = e.PerimErr
		}
	}
	n := float64(len(errs))
	return float64(okA) / n, float64(okP) / n, maxArea, maxPerim
}

// TestFig6ErrorBounds reproduces the paper's Fig. 6 claim: on a 256×256
// grid, choosing the working rectangle with area closest to each even
// A ∈ [1024, 16384] keeps the area error "usually less than 3%" and the
// perimeter error "usually less than 6%". With power-of-two widths the
// 5% square-likeness filter discards whole area bands (e.g. every 2048-
// point rectangle has aspect ratio ≥ 2), so isolated spikes near 8% are
// inherent to the paper's construction; we assert the "usually" claim as
// ≥ 85% of samples under the bound, plus a 10% hard ceiling.
func TestFig6ErrorBounds(t *testing.T) {
	ws, err := NewWorkingSet(256)
	if err != nil {
		t.Fatal(err)
	}
	errs := ws.ErrorSweep(1024, 16384)
	if len(errs) == 0 {
		t.Fatal("no error samples")
	}
	fracA, fracP, maxA, maxP := fig6Stats(errs)
	if fracA < 0.85 {
		t.Errorf("only %.1f%% of samples have area error < 3%% (want ≥ 85%%)", 100*fracA)
	}
	if fracP < 0.85 {
		t.Errorf("only %.1f%% of samples have perimeter error < 6%% (want ≥ 85%%)", 100*fracP)
	}
	if maxA >= 0.10 {
		t.Errorf("max area error %.4f ≥ 10%%", maxA)
	}
	if maxP >= 0.10 {
		t.Errorf("max perimeter error %.4f ≥ 10%%", maxP)
	}
}

// TestFig6OtherGrids covers the paper's "similar results were obtained
// for 128x128, 512x512, and 1024x1024 size grids".
func TestFig6OtherGrids(t *testing.T) {
	if testing.Short() {
		t.Skip("large grids in -short mode")
	}
	for _, n := range []int{128, 512, 1024} {
		ws, err := NewWorkingSet(n)
		if err != nil {
			t.Fatal(err)
		}
		// Same 4..64-processor range as the 256 case, scaled.
		lo, hi := n*n/64, n*n/4
		errs := ws.ErrorSweep(lo, hi)
		if len(errs) == 0 {
			t.Fatalf("n=%d: no samples", n)
		}
		fracA, fracP, maxA, maxP := fig6Stats(errs)
		if fracA < 0.85 {
			t.Errorf("n=%d: only %.1f%% of samples have area error < 3%%", n, 100*fracA)
		}
		if fracP < 0.85 {
			t.Errorf("n=%d: only %.1f%% of samples have perimeter error < 6%%", n, 100*fracP)
		}
		if maxA >= 0.10 || maxP >= 0.10 {
			t.Errorf("n=%d: max errors %.4f/%.4f ≥ 10%%", n, maxA, maxP)
		}
	}
}

func TestErrorsNoWorkingSet(t *testing.T) {
	ws := &WorkingSet{N: 4, Tolerance: 0}
	if _, ok := ws.Errors(16); ok {
		t.Error("Errors on empty set succeeded")
	}
	if _, _, ok := ws.SnapSquare(16); ok {
		t.Error("SnapSquare on empty set succeeded")
	}
}

func TestSnapSquare(t *testing.T) {
	n := 256
	ws, err := NewWorkingSet(n)
	if err != nil {
		t.Fatal(err)
	}
	// Target 4096 = 64×64: 16 processors exactly.
	r, procs, ok := ws.SnapSquare(4096)
	if !ok {
		t.Fatal("SnapSquare failed")
	}
	if r.Area() != 4096 {
		t.Errorf("snapped rect %v, want area 4096", r)
	}
	if procs != 16 {
		t.Errorf("procs = %d, want 16", procs)
	}
	// Procs always within [1, n²].
	for _, target := range []float64{1, 7, 100, 5000, 65536, 1e7} {
		_, procs, ok := ws.SnapSquare(target)
		if !ok {
			t.Fatalf("SnapSquare(%g) failed", target)
		}
		if procs < 1 || procs > n*n {
			t.Errorf("SnapSquare(%g) procs = %d out of range", target, procs)
		}
	}
}

// TestRealizableProcCounts: the square-decomposition counts are sparse
// relative to strips (the paper's §3 freedom remark), sorted, and in
// range.
func TestRealizableProcCounts(t *testing.T) {
	n := 256
	ws, err := NewWorkingSet(n)
	if err != nil {
		t.Fatal(err)
	}
	counts := ws.RealizableProcCounts()
	if len(counts) == 0 {
		t.Fatal("no realizable counts")
	}
	if !sort.IntsAreSorted(counts) {
		t.Error("counts unsorted")
	}
	inRange := 0
	seen := map[int]bool{}
	for _, c := range counts {
		if c < 1 {
			t.Errorf("count %d < 1", c)
		}
		if seen[c] {
			t.Errorf("duplicate count %d", c)
		}
		seen[c] = true
		if c <= n {
			inRange++
		}
	}
	// Strips realize all n counts in [1, n]; near-squares realize far
	// fewer — the paper's reduced freedom.
	if inRange >= n/2 {
		t.Errorf("%d realizable square counts ≤ %d — not sparse", inRange, n)
	}
	// The perfect-square counts 4, 16, 64 must be present (they come
	// from exact h×h working rectangles).
	for _, want := range []int{4, 16, 64} {
		if !seen[want] {
			t.Errorf("count %d missing", want)
		}
	}
}

// Property: SnapSquare's processor count times the snapped rectangle's
// area covers approximately the whole grid (within the working-set
// approximation error).
func TestSnapSquareConsistencyProperty(t *testing.T) {
	ws, err := NewWorkingSet(128)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	f := func() bool {
		target := 4 + rng.Float64()*4000
		r, procs, ok := ws.SnapSquare(target)
		if !ok {
			return false
		}
		covered := float64(procs) * float64(r.Area())
		total := float64(128 * 128)
		// Within 25% of the grid: mixed strip heights and the nearest-
		// area snap both contribute slack.
		return covered > 0.75*total && covered < 1.25*total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func TestRectsCopied(t *testing.T) {
	ws, err := NewWorkingSet(32)
	if err != nil {
		t.Fatal(err)
	}
	a := ws.Rects()
	a[0] = Rect{H: 999, W: 999}
	b := ws.Rects()
	if b[0] == a[0] {
		t.Error("Rects() exposes internal storage")
	}
}
