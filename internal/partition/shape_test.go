package partition

import (
	"testing"

	"optspeed/internal/stencil"
)

// TestPerimeterTable pins the paper's §3 table of k(P, S) values.
func TestPerimeterTable(t *testing.T) {
	cases := []struct {
		st    stencil.Stencil
		strip int
		sq    int
	}{
		{stencil.FivePoint, 1, 1},
		{stencil.NinePoint, 1, 1},
		{stencil.NineStar, 2, 2},
		{stencil.ThirteenPoint, 2, 2},
	}
	for _, tc := range cases {
		t.Run(tc.st.Name(), func(t *testing.T) {
			if got := Strip.Perimeters(tc.st); got != tc.strip {
				t.Errorf("k(strip, %s) = %d, want %d", tc.st.Name(), got, tc.strip)
			}
			if got := Square.Perimeters(tc.st); got != tc.sq {
				t.Errorf("k(square, %s) = %d, want %d", tc.st.Name(), got, tc.sq)
			}
		})
	}
}

func TestShapeString(t *testing.T) {
	if Strip.String() != "strip" || Square.String() != "square" {
		t.Errorf("String(): %q, %q", Strip.String(), Square.String())
	}
	if got := Shape(42).String(); got != "Shape(42)" {
		t.Errorf("invalid shape String() = %q", got)
	}
}

func TestShapeValid(t *testing.T) {
	if !Strip.Valid() || !Square.Valid() {
		t.Error("builtin shapes not valid")
	}
	if Shape(9).Valid() {
		t.Error("Shape(9) is valid")
	}
}

func TestShapes(t *testing.T) {
	got := Shapes()
	if len(got) != 2 || got[0] != Strip || got[1] != Square {
		t.Errorf("Shapes() = %v", got)
	}
}

// TestBoundaryWords checks the communication volumes of §4:
// V = 2n·k for strips, 4s·k for squares.
func TestBoundaryWords(t *testing.T) {
	n := 64
	if got := Strip.BoundaryWords(stencil.FivePoint, n, 0); got != 2*n {
		t.Errorf("strip 5-point volume = %d, want %d", got, 2*n)
	}
	if got := Strip.BoundaryWords(stencil.NineStar, n, 0); got != 4*n {
		t.Errorf("strip 9-star volume = %d, want %d", got, 4*n)
	}
	if got := Square.BoundaryWords(stencil.FivePoint, n, 8); got != 32 {
		t.Errorf("square 5-point volume (s=8) = %d, want 32", got)
	}
	if got := Square.BoundaryWords(stencil.ThirteenPoint, n, 8); got != 64 {
		t.Errorf("square 13-point volume (s=8) = %d, want 64", got)
	}
}

func TestMinArea(t *testing.T) {
	if got := Strip.MinArea(128); got != 128 {
		t.Errorf("Strip.MinArea(128) = %d", got)
	}
	if got := Square.MinArea(128); got != 1 {
		t.Errorf("Square.MinArea(128) = %d", got)
	}
}

func TestInvalidShapePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Perimeters":    func() { Shape(3).Perimeters(stencil.FivePoint) },
		"BoundaryWords": func() { Shape(3).BoundaryWords(stencil.FivePoint, 8, 8) },
		"MinArea":       func() { Shape(3).MinArea(8) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s on invalid shape did not panic", name)
				}
			}()
			f()
		})
	}
}
