package partition

import (
	"fmt"
	"sort"
)

// Rect is a legal rectangle: an h-row by w-column partition shape arising
// from the paper's two-stage decomposition (§3, Fig. 5) — the domain is
// first cut into strips, then into rectangles by a border every w-th
// column, where w must divide n evenly.
type Rect struct {
	H int // rows
	W int // columns
}

// Area returns the number of grid points covered by the rectangle.
func (r Rect) Area() int { return r.H * r.W }

// Perimeter returns the rectangle's perimeter in grid points, 2(h+w).
func (r Rect) Perimeter() int { return 2 * (r.H + r.W) }

// AspectRatio returns max(h,w)/min(h,w) ≥ 1.
func (r Rect) AspectRatio() float64 {
	if r.H <= 0 || r.W <= 0 {
		return 0
	}
	if r.H > r.W {
		return float64(r.H) / float64(r.W)
	}
	return float64(r.W) / float64(r.H)
}

// String renders the rectangle as "HxW".
func (r Rect) String() string { return fmt.Sprintf("%dx%d", r.H, r.W) }

// StripHeights returns the set of strip heights achievable on an n-row
// domain by the paper's strip rule: for every strip count q in 1..n the
// decomposition produces rows of ⌊n/q⌋ and, when q ∤ n, ⌈n/q⌉ rows. The
// result is sorted ascending.
func StripHeights(n int) []int {
	if n < 1 {
		return nil
	}
	set := make(map[int]bool)
	for q := 1; q <= n; q++ {
		set[n/q] = true
		if n%q != 0 {
			set[n/q+1] = true
		}
	}
	heights := make([]int, 0, len(set))
	for h := range set {
		heights = append(heights, h)
	}
	sort.Ints(heights)
	return heights
}

// Divisors returns the positive divisors of n in ascending order. Legal
// rectangle widths are exactly the divisors of n (the column border must
// divide n evenly, paper §3).
func Divisors(n int) []int {
	if n < 1 {
		return nil
	}
	var small, large []int
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			small = append(small, d)
			if d != n/d {
				large = append(large, n/d)
			}
		}
	}
	for i := len(large) - 1; i >= 0; i-- {
		small = append(small, large[i])
	}
	return small
}

// LegalRectangles enumerates every legal rectangle on an n×n grid: height
// any number of contiguous rows 1..n, width a divisor of n (the column
// border must fall every w-th column, paper §3). Heights are unrestricted
// because the paper explicitly relaxes the equal-work requirement ("we
// will therefore relax the requirements that each partition have exactly
// the same number of points"): a band of h rows exists in some horizontal
// cutting of the domain for every h, even when the paper's ±1-row strip
// rule cannot make all bands equal. Restricting heights to StripHeights(n)
// leaves the achievable-area set far too sparse to reproduce the paper's
// Fig. 6 error bounds (gaps above 30% instead of the reported <3%).
// The result is sorted by area, then height.
func LegalRectangles(n int) []Rect {
	widths := Divisors(n)
	rects := make([]Rect, 0, n*len(widths))
	for h := 1; h <= n; h++ {
		for _, w := range widths {
			rects = append(rects, Rect{H: h, W: w})
		}
	}
	sort.Slice(rects, func(a, b int) bool {
		if rects[a].Area() != rects[b].Area() {
			return rects[a].Area() < rects[b].Area()
		}
		return rects[a].H < rects[b].H
	})
	return rects
}

// Block is one rectangle of a concrete grid-of-rectangles decomposition.
type Block struct {
	Index      int // partition index in row-major block order
	Row0, Col0 int // top-left grid coordinate
	Rows, Cols int // extent
}

// Area returns the number of grid points in the block.
func (b Block) Area() int { return b.Rows * b.Cols }

// DecomposeBlocks cuts an n×n grid into q strip bands (paper's strip rule)
// by n/w column groups of width w. It returns the q·(n/w) blocks in
// row-major order, or an error if w does not divide n or q is out of range.
func DecomposeBlocks(n, q, w int) ([]Block, error) {
	if w < 1 || n%w != 0 {
		return nil, fmt.Errorf("partition: block width %d must divide n=%d", w, n)
	}
	bands, err := DecomposeStrips(n, q)
	if err != nil {
		return nil, err
	}
	cols := n / w
	blocks := make([]Block, 0, q*cols)
	for _, b := range bands {
		for c := 0; c < cols; c++ {
			blocks = append(blocks, Block{
				Index: len(blocks),
				Row0:  b.Row0, Col0: c * w,
				Rows: b.Rows, Cols: w,
			})
		}
	}
	return blocks, nil
}
