package partition

import (
	"fmt"
	"strings"
)

// cellGlyph cycles through distinct printable glyphs for partition ids.
func cellGlyph(id int) byte {
	const glyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	return glyphs[id%len(glyphs)]
}

// RenderBands draws a strip decomposition as an n×n character grid, one
// glyph per partition (paper Fig. 4). Intended for small n; callers
// downsample larger grids.
func RenderBands(n int, bands []Band) (string, error) {
	owner := make([]int, n)
	for i := range owner {
		owner[i] = -1
	}
	for _, b := range bands {
		for r := b.Row0; r < b.Row0+b.Rows; r++ {
			if r < 0 || r >= n {
				return "", fmt.Errorf("partition: band %d covers row %d outside [0,%d)", b.Index, r, n)
			}
			owner[r] = b.Index
		}
	}
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if owner[i] < 0 {
			return "", fmt.Errorf("partition: row %d uncovered", i)
		}
		g := cellGlyph(owner[i])
		for j := 0; j < n; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteByte(g)
		}
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}

// RenderBlocks draws a grid-of-blocks decomposition as an n×n character
// grid, one glyph per block (paper Figs. 2 and 5).
func RenderBlocks(n int, blocks []Block) (string, error) {
	owner := make([][]int, n)
	for i := range owner {
		owner[i] = make([]int, n)
		for j := range owner[i] {
			owner[i][j] = -1
		}
	}
	for _, b := range blocks {
		for i := b.Row0; i < b.Row0+b.Rows; i++ {
			for j := b.Col0; j < b.Col0+b.Cols; j++ {
				if i < 0 || i >= n || j < 0 || j >= n {
					return "", fmt.Errorf("partition: block %d covers (%d,%d) outside grid", b.Index, i, j)
				}
				owner[i][j] = b.Index
			}
		}
	}
	var sb strings.Builder
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if owner[i][j] < 0 {
				return "", fmt.Errorf("partition: cell (%d,%d) uncovered", i, j)
			}
			if j > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteByte(cellGlyph(owner[i][j]))
		}
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}
