package service

import (
	"net/http"
	"sync"
	"time"
)

// endpointMetrics accumulates latency for one endpoint.
type endpointMetrics struct {
	count     uint64
	errors    uint64 // responses with status >= 400, excluding 499
	cancelled uint64 // requests aborted by the client (status 499)
	total     time.Duration
	max       time.Duration
}

// EndpointSnapshot is the JSON form of one endpoint's metrics.
type EndpointSnapshot struct {
	Count     uint64  `json:"count"`
	Errors    uint64  `json:"errors"`
	Cancelled uint64  `json:"cancelled"`
	AvgMillis float64 `json:"avg_ms"`
	MaxMillis float64 `json:"max_ms"`
}

// metricsRegistry tracks per-endpoint latency. Registration happens at
// mux construction; observation on every request.
type metricsRegistry struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
}

func newMetricsRegistry() *metricsRegistry {
	return &metricsRegistry{endpoints: make(map[string]*endpointMetrics)}
}

func (m *metricsRegistry) observe(name string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ep := m.endpoints[name]
	if ep == nil {
		ep = &endpointMetrics{}
		m.endpoints[name] = ep
	}
	ep.count++
	switch {
	case status == statusClientClosedRequest:
		ep.cancelled++
	case status >= 400:
		ep.errors++
	}
	ep.total += d
	if d > ep.max {
		ep.max = d
	}
}

func (m *metricsRegistry) snapshot() map[string]EndpointSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]EndpointSnapshot, len(m.endpoints))
	for name, ep := range m.endpoints {
		s := EndpointSnapshot{
			Count:     ep.count,
			Errors:    ep.errors,
			Cancelled: ep.cancelled,
			MaxMillis: float64(ep.max) / float64(time.Millisecond),
		}
		if ep.count > 0 {
			s.AvgMillis = float64(ep.total) / float64(ep.count) / float64(time.Millisecond)
		}
		out[name] = s
	}
	return out
}

// statusRecorder captures the response status for metrics and the
// access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Unwrap exposes the underlying writer so http.ResponseController can
// reach Flush/SetWriteDeadline through the recorder — the streaming
// endpoint depends on both.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// instrument wraps a handler with latency recording under name.
func (m *metricsRegistry) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, req)
		m.observe(name, rec.status, time.Since(start))
	}
}
