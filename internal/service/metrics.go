package service

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"optspeed/internal/telemetry"
)

// endpointMetrics accumulates latency for one endpoint. The counters
// and the latency histogram live in the shared telemetry registry (the
// Prometheus page); total and max are kept alongside because the
// legacy /v1/metrics JSON reports exact average and maximum latency,
// which a bucketed histogram cannot reproduce — and that JSON is
// pinned byte-for-byte by golden tests.
type endpointMetrics struct {
	count     *telemetry.Counter
	errors    *telemetry.Counter // responses with status >= 400, excluding 499
	cancelled *telemetry.Counter // requests aborted by the client (status 499)
	latency   *telemetry.Histogram
	totalNS   atomic.Int64
	maxNS     atomic.Int64
}

// EndpointSnapshot is the JSON form of one endpoint's metrics.
type EndpointSnapshot struct {
	Count     uint64  `json:"count"`
	Errors    uint64  `json:"errors"`
	Cancelled uint64  `json:"cancelled"`
	AvgMillis float64 `json:"avg_ms"`
	MaxMillis float64 `json:"max_ms"`
}

// metricsRegistry tracks per-endpoint latency, backed by the telemetry
// registry so one observation feeds both the Prometheus exposition and
// the legacy JSON snapshot. Endpoints materialize on first observation,
// exactly as the pre-telemetry map did.
type metricsRegistry struct {
	reg       *telemetry.Registry
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
}

func newMetricsRegistry(reg *telemetry.Registry) *metricsRegistry {
	return &metricsRegistry{reg: reg, endpoints: make(map[string]*endpointMetrics)}
}

// endpoint returns the instruments for name, creating them (and their
// registry series) on first use.
func (m *metricsRegistry) endpoint(name string) *endpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	ep := m.endpoints[name]
	if ep == nil {
		lbl := telemetry.L("endpoint", name)
		ep = &endpointMetrics{
			count: m.reg.NewCounter("optspeed_http_requests_total",
				"HTTP requests served, by instrumented endpoint.", lbl),
			errors: m.reg.NewCounter("optspeed_http_request_errors_total",
				"HTTP responses with status >= 400 (excluding client aborts).", lbl),
			cancelled: m.reg.NewCounter("optspeed_http_requests_cancelled_total",
				"HTTP requests aborted by the client before a response.", lbl),
			latency: m.reg.NewHistogram("optspeed_http_request_duration_seconds",
				"HTTP request latency in seconds.", telemetry.DefLatencyBuckets, lbl),
		}
		m.endpoints[name] = ep
	}
	return ep
}

func (m *metricsRegistry) observe(name string, status int, d time.Duration) {
	ep := m.endpoint(name)
	ep.count.Inc()
	switch {
	case status == statusClientClosedRequest:
		ep.cancelled.Inc()
	case status >= 400:
		ep.errors.Inc()
	}
	ep.latency.Observe(d.Seconds())
	ep.totalNS.Add(int64(d))
	for {
		max := ep.maxNS.Load()
		if int64(d) <= max || ep.maxNS.CompareAndSwap(max, int64(d)) {
			return
		}
	}
}

func (m *metricsRegistry) snapshot() map[string]EndpointSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]EndpointSnapshot, len(m.endpoints))
	for name, ep := range m.endpoints {
		count := ep.count.Value()
		total := time.Duration(ep.totalNS.Load())
		max := time.Duration(ep.maxNS.Load())
		s := EndpointSnapshot{
			Count:     count,
			Errors:    ep.errors.Value(),
			Cancelled: ep.cancelled.Value(),
			MaxMillis: float64(max) / float64(time.Millisecond),
		}
		if count > 0 {
			s.AvgMillis = float64(total) / float64(count) / float64(time.Millisecond)
		}
		out[name] = s
	}
	return out
}

// statusRecorder captures the response status for metrics and the
// access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Unwrap exposes the underlying writer so http.ResponseController can
// reach Flush/SetWriteDeadline through the recorder — the streaming
// endpoint depends on both.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// instrument wraps a handler with latency recording under name.
func (m *metricsRegistry) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, req)
		m.observe(name, rec.status, time.Since(start))
	}
}
