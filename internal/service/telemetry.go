// Telemetry wiring: the Prometheus exposition endpoint, the trace
// read API, and the per-request span middleware that ties the two
// halves of internal/telemetry into the HTTP surface.
package service

import (
	"net/http"
	"time"

	"optspeed/internal/telemetry"
)

// registerCollectors bridges every subsystem's counters into the
// telemetry registry as scrape-time reads. Called once from New, after
// all subsystems exist; when metrics are disabled it is simply not
// called and no subsystem pays anything.
func (s *Server) registerCollectors() {
	s.telemetry.NewGaugeFunc("optspeed_uptime_seconds",
		"Seconds since this process started serving.",
		func() float64 { return time.Since(s.started).Seconds() })
	s.engine.RegisterMetrics(s.telemetry)
	s.dispatcher.RegisterMetrics(s.telemetry)
	s.admission.RegisterMetrics(s.telemetry)
	s.store.RegisterMetrics(s.telemetry)
	if s.persistence != nil {
		s.persistence.RegisterMetrics(s.telemetry)
	}
	if s.tracer != nil {
		s.tracer.RegisterMetrics(s.telemetry)
	}
}

// handlePrometheus serves the registry in Prometheus text exposition
// format (version 0.0.4). The endpoint is deliberately outside the
// instrumented routing table: scraping must not perturb the latency
// metrics it reports, and the legacy /v1/metrics endpoint map must not
// grow an entry just because a scraper came by.
func (s *Server) handlePrometheus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.telemetry.WritePrometheus(w)
}

// TraceSpanJSON is the wire form of one recorded span.
type TraceSpanJSON struct {
	SpanID     string            `json:"span_id"`
	ParentID   string            `json:"parent_id,omitempty"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationMs float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// TraceResponse is the body of GET /v1/traces/{id}: the trace's
// summary timings plus every recorded span, parents before children
// where starts tie.
type TraceResponse struct {
	TraceID        string          `json:"trace_id"`
	SpanCount      int             `json:"span_count"`
	SpansDropped   int             `json:"spans_dropped,omitempty"`
	WallMs         float64         `json:"wall_ms"`
	CriticalPathMs float64         `json:"critical_path_ms"`
	SerialMs       float64         `json:"serial_ms"`
	Spans          []TraceSpanJSON `json:"spans"`
}

func traceResponse(view telemetry.TraceView) TraceResponse {
	sum := view.Summary()
	resp := TraceResponse{
		TraceID:        view.ID,
		SpanCount:      sum.Spans,
		SpansDropped:   sum.Dropped,
		WallMs:         sum.WallMs,
		CriticalPathMs: sum.CriticalPathMs,
		SerialMs:       sum.SerialMs,
		Spans:          make([]TraceSpanJSON, len(view.Spans)),
	}
	for i, sp := range view.Spans {
		j := TraceSpanJSON{
			SpanID:     sp.SpanID,
			ParentID:   sp.ParentID,
			Name:       sp.Name,
			Start:      sp.Start,
			DurationMs: float64(sp.Duration) / float64(time.Millisecond),
		}
		if len(sp.Attrs) > 0 {
			j.Attrs = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				j.Attrs[a.Key] = a.Value
			}
		}
		resp.Spans[i] = j
	}
	return resp
}

// handleTraceGet serves one recorded trace. 404 covers every way a
// trace can be unknown: tracing disabled, a malformed id, an id never
// seen, or a trace already evicted from the bounded buffer.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.tracer == nil || !validRequestID(id) {
		s.writeV2Error(w, r, http.StatusNotFound, codeNotFound, "no such trace")
		return
	}
	view, ok := s.tracer.Trace(id)
	if !ok {
		s.writeV2Error(w, r, http.StatusNotFound, codeNotFound, "no such trace")
		return
	}
	s.writeJSONPretty(w, r, http.StatusOK, traceResponse(view))
}

// traced wraps an evaluation handler with a request-scoped span. The
// span adopts the caller's X-Trace-Id/X-Parent-Span when present (the
// distributed case: a coordinator's shard span becomes the parent of
// this worker's request span) and mints a fresh trace otherwise, then
// echoes the trace id on the response so the submitter can fetch the
// trace later. Read-only routes stay untraced: a status poll is not an
// evaluation and would only churn the bounded trace buffer.
func (s *Server) traced(name string, h http.HandlerFunc) http.HandlerFunc {
	if s.tracer == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		tid := r.Header.Get(telemetry.TraceIDHeader)
		pid := r.Header.Get(telemetry.ParentSpanHeader)
		if !validRequestID(tid) {
			tid, pid = "", ""
		} else if !validRequestID(pid) {
			pid = ""
		}
		ctx, span := s.tracer.StartRoot(r.Context(), name, tid, pid)
		span.SetAttr("endpoint", name)
		if id := RequestIDFrom(ctx); id != "" {
			span.SetAttr("request_id", id)
		}
		if tn := s.tenantFrom(ctx); tn != nil {
			span.SetAttr("tenant", tn.Name())
		}
		w.Header().Set(telemetry.TraceIDHeader, telemetry.TraceIDFrom(ctx))
		h(w, r.WithContext(ctx))
		span.End()
	}
}

// jobTrace assembles the job resource's trace block from the trace
// buffer, or nil when there is nothing to show (tracing off, the job
// predates this process, or the trace was evicted).
func (s *Server) jobTrace(traceID string) *JobTraceJSON {
	if s.tracer == nil || traceID == "" {
		return nil
	}
	view, ok := s.tracer.Trace(traceID)
	if !ok || len(view.Spans) == 0 {
		return nil
	}
	sum := view.Summary()
	return &JobTraceJSON{
		ID:             traceID,
		Spans:          sum.Spans,
		WallMs:         sum.WallMs,
		CriticalPathMs: sum.CriticalPathMs,
		SerialMs:       sum.SerialMs,
	}
}
