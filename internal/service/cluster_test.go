package service

import (
	"encoding/json"
	"net/http"
	"testing"

	"optspeed/internal/dispatch"
	"optspeed/internal/sweep"
)

// newPeerAPIFixture builds a coordinator test server over two live
// in-process workers and returns (coordinator URL, worker URLs).
func newPeerAPIFixture(t *testing.T) (string, []string) {
	t.Helper()
	var workers []string
	for i := 0; i < 2; i++ {
		_, wts := newTestServerWith(t, Config{Engine: sweep.New(sweep.Options{})})
		workers = append(workers, wts.URL)
	}
	eng := sweep.New(sweep.Options{})
	d := dispatch.New(dispatch.Options{Engine: eng, Peers: workers[:1], ShardSize: 8})
	_, ts := newTestServerWith(t, Config{Engine: eng, Dispatcher: d})
	return ts.URL, workers
}

func decodeRoster(t *testing.T, raw []byte) []string {
	t.Helper()
	var out struct {
		Peers []string `json:"peers"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("roster response %s: %v", raw, err)
	}
	return out.Peers
}

// TestClusterPeerLifecycleAPI walks the runtime membership surface:
// add a live worker, reject a duplicate with 409, serve traffic over
// the grown roster, evict with DELETE, and 404 an unknown peer.
func TestClusterPeerLifecycleAPI(t *testing.T) {
	coord, workers := newPeerAPIFixture(t)

	resp, raw := doJSON(t, http.MethodPost, coord+"/v2/cluster/peers",
		`{"url":"`+workers[1]+`"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add peer: %d %s", resp.StatusCode, raw)
	}
	if peers := decodeRoster(t, raw); len(peers) != 2 {
		t.Fatalf("roster after add = %v", peers)
	}

	resp, raw = doJSON(t, http.MethodPost, coord+"/v2/cluster/peers",
		`{"url":"`+workers[1]+`"}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate add: %d %s", resp.StatusCode, raw)
	}
	var problem struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(raw, &problem); err != nil || problem.Error.Code != "conflict" {
		t.Fatalf("duplicate add problem = %s (err %v)", raw, err)
	}

	// The grown roster serves real traffic: a sharded sweep through the
	// coordinator succeeds, and the cluster report shows both peers.
	body := `{"space":{"ns":[16,24,32,48],"stencils":["5-point","9-point"],` +
		`"shapes":["strip","square"],"machines":[{"type":"sync-bus"}]}}`
	resp, raw = doJSON(t, http.MethodPost, coord+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep over grown roster: %d %s", resp.StatusCode, raw)
	}
	resp, raw = doJSON(t, http.MethodGet, coord+"/v2/cluster", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster status: %d", resp.StatusCode)
	}
	var status struct {
		Mode       string                        `json:"mode"`
		Peers      []struct{ URL, State string } `json:"peers"`
		Membership map[string]int                `json:"membership_events"`
	}
	if err := json.Unmarshal(raw, &status); err != nil {
		t.Fatal(err)
	}
	if status.Mode != "coordinator" || len(status.Peers) != 2 {
		t.Fatalf("status = %s", raw)
	}
	if status.Membership["added"] != 1 {
		t.Fatalf("membership events = %v, want added=1", status.Membership)
	}

	resp, raw = doJSON(t, http.MethodDelete,
		coord+"/v2/cluster/peers?url="+workers[1], "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove peer: %d %s", resp.StatusCode, raw)
	}
	if peers := decodeRoster(t, raw); len(peers) != 1 {
		t.Fatalf("roster after remove = %v", peers)
	}

	resp, raw = doJSON(t, http.MethodDelete,
		coord+"/v2/cluster/peers?url=http://127.0.0.1:1/nope", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("remove unknown: %d %s", resp.StatusCode, raw)
	}

	// Malformed body → invalid_request, not a panic.
	resp, _ = doJSON(t, http.MethodPost, coord+"/v2/cluster/peers", `{"url":`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed add: %d", resp.StatusCode)
	}
}
