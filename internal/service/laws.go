package service

import (
	"fmt"
	"net/http"

	"optspeed/internal/core"
	"optspeed/internal/jobs"
	"optspeed/internal/sweep"
)

// LawsRequest is the body of POST /v2/laws: one problem + machine, and
// an optional processor axis. An empty axis defaults to powers of two
// up to the problem's decomposition bound.
type LawsRequest struct {
	N       int              `json:"n"`
	Stencil string           `json:"stencil"`
	Shape   string           `json:"shape"`
	Machine core.MachineSpec `json:"machine"`
	Procs   []int            `json:"procs,omitempty"`
}

// LawsPoint is the four-curve overlay at one processor count: the
// paper's model speedup, fixed-size Amdahl and scaled Gustafson-Barsis
// at the model-implied serial fraction, and Gunther's critical-path
// bound min(P, T₁/T∞).
type LawsPoint struct {
	Procs        int     `json:"procs"`
	Model        float64 `json:"model"`
	Amdahl       float64 `json:"amdahl"`
	Gustafson    float64 `json:"gustafson"`
	CriticalPath float64 `json:"critical_path"`
}

// LawsDivergence marks the first axis point where two curves part ways
// (or a curve changes regime). Kind is a stable machine-readable
// string; Detail is human text and may change.
type LawsDivergence struct {
	Kind   string `json:"kind"`
	Procs  int    `json:"procs"`
	Detail string `json:"detail"`
}

// LawsResponse is the comparative overlay: the resolved problem and
// canonical machine, the scalar anchors (serial fraction, critical-path
// ratio, the model's optimal allocation), one LawsPoint per axis value,
// and the divergence markers.
type LawsResponse struct {
	N                 int              `json:"n"`
	Stencil           string           `json:"stencil"`
	Shape             string           `json:"shape"`
	Machine           core.MachineSpec `json:"machine"`
	SerialFraction    float64          `json:"serial_fraction"`
	CriticalPathRatio float64          `json:"critical_path_ratio"`
	OptimalProcs      int              `json:"optimal_procs"`
	OptimalSpeedup    float64          `json:"optimal_speedup"`
	Points            []LawsPoint      `json:"points"`
	Divergences       []LawsDivergence `json:"divergences"`
	Stats             SweepStats       `json:"stats"`
}

// lawsDivergeFactor is the relative gap at which two overlay curves are
// reported as diverged.
const lawsDivergeFactor = 0.1

// defaultLawsProcs is the default axis: powers of two up to the
// problem's decomposition bound.
func defaultLawsProcs(maxP int) []int {
	var procs []int
	for q := 1; q <= maxP; q *= 2 {
		procs = append(procs, q)
		if q > maxP/2 {
			break
		}
	}
	return procs
}

// lawsSpecs lays the overlay out as one flat spec list — the optimal
// allocation first, then per axis value the model speedup and the three
// laws — so the whole evaluation runs through the ordinary sweep
// machinery: engine cache, admission cost accounting, and (on a
// coordinator) dispatch across workers.
func lawsSpecs(req LawsRequest, procs []int) []sweep.Spec {
	base := sweep.Spec{N: req.N, Stencil: req.Stencil, Shape: req.Shape, Machine: req.Machine}
	specs := make([]sweep.Spec, 0, 1+4*len(procs))
	opt := base
	opt.Op = sweep.OpOptimize
	specs = append(specs, opt)
	for _, q := range procs {
		for _, op := range [...]sweep.Op{sweep.OpSpeedup, sweep.OpAmdahl, sweep.OpGustafson, sweep.OpCriticalPath} {
			s := base
			s.Op, s.Procs = op, q
			specs = append(specs, s)
		}
	}
	return specs
}

// handleLaws serves POST /v2/laws: it validates the problem/machine
// pair and the axis up front (bad requests never touch the admission
// gate), evaluates the overlay through the jobs core under one
// admission slot per spec, and assembles the comparison.
func (s *Server) handleLaws(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.admitRequest(w, r); !ok {
		return
	}
	var req LawsRequest
	if prob := s.decodeBody(r, w, &req); prob != nil {
		prob.writeV2(s, w, r)
		return
	}
	base := sweep.Spec{N: req.N, Stencil: req.Stencil, Shape: req.Shape, Machine: req.Machine}
	problem, err := base.Problem()
	if err != nil {
		s.writeV2Error(w, r, http.StatusBadRequest, codeInvalidRequest, "%v", err)
		return
	}
	if err := base.Validate(); err != nil {
		s.writeV2Error(w, r, http.StatusBadRequest, codeInvalidRequest, "%v", err)
		return
	}
	arch, err := req.Machine.Machine()
	if err != nil {
		s.writeV2Error(w, r, http.StatusBadRequest, codeInvalidRequest, "%v", err)
		return
	}
	canon, err := core.SpecFor(arch)
	if err != nil {
		s.writeV2Error(w, r, http.StatusBadRequest, codeInvalidRequest, "%v", err)
		return
	}
	maxP := problem.MaxProcs()
	procs := req.Procs
	if len(procs) == 0 {
		procs = defaultLawsProcs(maxP)
	} else {
		for i, q := range procs {
			if q < 1 || q > maxP {
				s.writeV2Error(w, r, http.StatusBadRequest, codeInvalidRequest,
					"procs[%d]=%d out of range [1, %d]", i, q, maxP)
				return
			}
			if i > 0 && q <= procs[i-1] {
				s.writeV2Error(w, r, http.StatusBadRequest, codeInvalidRequest,
					"procs axis must be strictly increasing (procs[%d]=%d after %d)", i, q, procs[i-1])
				return
			}
		}
	}
	specs := lawsSpecs(req, procs)
	if len(specs) > s.maxSpecs {
		s.writeV2Error(w, r, http.StatusRequestEntityTooLarge, codeTooLarge,
			"laws overlay of %d specs exceeds the limit of %d", len(specs), s.maxSpecs)
		return
	}
	release, ok := s.admitEvaluation(w, r, len(specs))
	if !ok {
		return
	}
	defer release()
	results, err := s.store.RunSync(r.Context(), jobs.Request{Kind: jobs.KindSweep, Specs: specs})
	if err != nil {
		s.writeSyncFailure(w, r)
		return
	}
	var stats SweepStats
	for i := range results {
		stats.observe(&results[i])
		if results[i].Err != nil {
			// The axis was validated against the same range the evaluators
			// enforce, so a per-result error here is an internal fault, not
			// a client one.
			s.writeV2Error(w, r, http.StatusInternalServerError, codeInternal,
				"laws evaluation failed at spec %d", i)
			return
		}
	}
	// The scalar anchors come straight from the overlay's own results:
	// the optimal allocation is spec 0, and the critical-path ratio is a
	// direct (cached-by-construction) model query.
	opt := results[0].Alloc
	pi, err := core.CriticalPathRatio(problem, arch)
	if err != nil {
		s.writeV2Error(w, r, http.StatusInternalServerError, codeInternal, "laws evaluation failed")
		return
	}
	resp := LawsResponse{
		N:                 problem.N,
		Stencil:           req.Stencil,
		Shape:             req.Shape,
		Machine:           canon,
		SerialFraction:    opt.SerialFraction(),
		CriticalPathRatio: pi,
		OptimalProcs:      opt.Procs,
		OptimalSpeedup:    opt.Speedup,
		Points:            make([]LawsPoint, len(procs)),
		Stats:             stats,
	}
	for i, q := range procs {
		base := 1 + 4*i
		resp.Points[i] = LawsPoint{
			Procs:        q,
			Model:        results[base].Value,
			Amdahl:       results[base+1].Value,
			Gustafson:    results[base+2].Value,
			CriticalPath: results[base+3].Value,
		}
	}
	resp.Divergences = lawsDivergences(resp.Points, opt.Procs, pi)
	s.writeJSON(w, r, http.StatusOK, resp)
}

// lawsDivergences walks the overlay left to right and marks the first
// axis point of each regime change: the model departing from Amdahl's
// fixed-fraction curve (communication structure a constant f cannot
// express), scaled Gustafson pulling away from fixed-size Amdahl, the
// critical-path bound saturating at T₁/T∞, and the axis passing the
// model's optimum. The walk is deterministic, so the marker set is
// byte-stable for a given overlay.
func lawsDivergences(points []LawsPoint, optProcs int, pi float64) []LawsDivergence {
	var out []LawsDivergence
	for _, pt := range points {
		if rel(pt.Model, pt.Amdahl) > lawsDivergeFactor {
			out = append(out, LawsDivergence{
				Kind:  "model_vs_amdahl",
				Procs: pt.Procs,
				Detail: fmt.Sprintf("model speedup %.4g vs Amdahl %.4g: communication cost is not a fixed serial fraction",
					pt.Model, pt.Amdahl),
			})
			break
		}
	}
	for _, pt := range points {
		if pt.Amdahl > 0 && (pt.Gustafson-pt.Amdahl)/pt.Amdahl > lawsDivergeFactor {
			out = append(out, LawsDivergence{
				Kind:  "gustafson_vs_amdahl",
				Procs: pt.Procs,
				Detail: fmt.Sprintf("scaled speedup %.4g vs fixed-size %.4g at equal serial fraction",
					pt.Gustafson, pt.Amdahl),
			})
			break
		}
	}
	for _, pt := range points {
		if float64(pt.Procs) >= pi {
			out = append(out, LawsDivergence{
				Kind:   "critical_path_saturates",
				Procs:  pt.Procs,
				Detail: fmt.Sprintf("Brent clamp ends: bound saturates at T1/Tinf = %.4g", pi),
			})
			break
		}
	}
	for _, pt := range points {
		if pt.Procs > optProcs {
			out = append(out, LawsDivergence{
				Kind:   "past_optimal",
				Procs:  pt.Procs,
				Detail: fmt.Sprintf("beyond the model's optimal allocation P* = %d", optProcs),
			})
			break
		}
	}
	return out
}

// rel is the relative gap |a−b| / max(|b|, tiny).
func rel(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if b < 0 {
		b = -b
	}
	if b == 0 {
		return 0
	}
	return d / b
}
