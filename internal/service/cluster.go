package service

import "net/http"

// handleCluster reports the coordinator's view of its worker fleet:
// mode ("single" when no peers are configured, "coordinator"
// otherwise), the shard-planning size, a live /healthz probe of every
// peer merged with its rolling shard ledger, and the dispatcher's
// scatter counters. The probe runs per request — this endpoint is the
// operator's peer-health check, so it must reflect the fleet now, not
// a cached verdict.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	s.writeJSONPretty(w, r, http.StatusOK, s.dispatcher.ClusterStatus(r.Context()))
}
