package service

import (
	"errors"
	"net/http"

	"optspeed/internal/dispatch"
)

// handleCluster reports the coordinator's view of its worker fleet:
// mode ("single" when no peers are configured, "coordinator"
// otherwise), the shard-planning size, a live /healthz probe of every
// peer merged with its rolling shard ledger and membership state, the
// dispatcher's scatter/hedge counters, and the current hedge budget.
// The probe runs per request — this endpoint is the operator's
// peer-health check, so it must reflect the fleet now, not a cached
// verdict.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	s.writeJSONPretty(w, r, http.StatusOK, s.dispatcher.ClusterStatus(r.Context()))
}

// PeerRequest is the body of POST/DELETE /v2/cluster/peers.
type PeerRequest struct {
	// URL is the worker's base URL (http(s)://host[:port]).
	URL string `json:"url"`
}

// PeerChangeResponse acknowledges a roster change with the resulting
// member list in rotation order.
type PeerChangeResponse struct {
	Peers []string `json:"peers"`
}

// handlePeerAdd admits a worker into the live roster
// (POST /v2/cluster/peers). The -peers flag is only the seed list; the
// roster is owned by the dispatcher from then on. Adding a URL that was
// removed earlier revives its ledger and breaker history. 409 when the
// peer is already a member.
func (s *Server) handlePeerAdd(w http.ResponseWriter, r *http.Request) {
	var req PeerRequest
	if p := s.decodeBody(r, w, &req); p != nil {
		p.writeV2(s, w, r)
		return
	}
	if err := s.dispatcher.AddPeer(req.URL); err != nil {
		if errors.Is(err, dispatch.ErrPeerExists) {
			s.writeV2Error(w, r, http.StatusConflict, codeConflict, "peer %s is already a member", req.URL)
			return
		}
		s.writeV2Error(w, r, http.StatusBadRequest, codeInvalidRequest, "%v", err)
		return
	}
	s.writeJSONPretty(w, r, http.StatusOK, PeerChangeResponse{Peers: s.dispatcher.PeerURLs()})
}

// handlePeerRemove evicts a worker from the live roster
// (DELETE /v2/cluster/peers?url=... or with the same JSON body as the
// add). The peer's outstanding shard attempts are reclaimed and
// reassigned immediately; its ledger survives for a later re-add. 404
// when the URL is not a member.
func (s *Server) handlePeerRemove(w http.ResponseWriter, r *http.Request) {
	var req PeerRequest
	if req.URL = r.URL.Query().Get("url"); req.URL == "" {
		if p := s.decodeBody(r, w, &req); p != nil {
			p.writeV2(s, w, r)
			return
		}
	}
	if err := s.dispatcher.RemovePeer(req.URL); err != nil {
		if errors.Is(err, dispatch.ErrPeerUnknown) {
			s.writeV2Error(w, r, http.StatusNotFound, codeNotFound, "peer %s is not a member", req.URL)
			return
		}
		s.writeV2Error(w, r, http.StatusBadRequest, codeInvalidRequest, "%v", err)
		return
	}
	s.writeJSONPretty(w, r, http.StatusOK, PeerChangeResponse{Peers: s.dispatcher.PeerURLs()})
}
