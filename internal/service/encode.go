// Hand-rolled JSON wire encoders for the hot result types. The generic
// encoding/json path reflects over every value and allocates per
// result; a maximum-size sweep response re-marshals tens of thousands
// of results per request, which made serialization the dominant cost of
// the serving path once the engine itself went allocation-free. These
// appenders write the exact bytes encoding/json would produce
// (including its HTML escaping and float formatting quirks — pinned by
// the byte-identity tests in encode_test.go) into pooled buffers, so
// NDJSON streaming and cursor pages cost at most one amortized
// allocation per result.
package service

import (
	"math"
	"strconv"
	"sync"
	"unicode/utf8"

	"optspeed/internal/sweep"
)

// bufPool holds response build buffers. Buffers that grew beyond
// maxPooledBuf (a pathological single response) are dropped instead of
// pinning their memory in the pool.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

const maxPooledBuf = 1 << 20

func getBuf() *[]byte {
	return bufPool.Get().(*[]byte)
}

func putBuf(b *[]byte) {
	if cap(*b) > maxPooledBuf {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string exactly as encoding/json
// does with its default HTML escaping: printable ASCII except
// ", \, <, > and & passes through; \n, \r, \t use short escapes; other
// control bytes (and <, >, &) become \u00xx; invalid UTF-8 becomes
// �; and U+2028/U+2029 are escaped for JS embedding.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= ' ' && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendJSONFloat appends f exactly as encoding/json formats a float64:
// shortest representation, fixed notation inside [1e-6, 1e21),
// exponent notation outside it with a single-digit exponent left
// unpadded (e-7, not e-07). NaN and infinities are not representable in
// JSON — encoding/json fails the whole marshal; the model only emits
// finite values on success paths, and the byte-identity tests pin the
// finite behavior — so they encode as null here rather than corrupting
// the payload mid-write.
func appendJSONFloat(dst []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(dst, "null"...)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, matching encoding/json.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

// appendSpec appends one sweep.Spec with the field order and omitempty
// behavior of its struct tags.
func appendSpec(dst []byte, s *sweep.Spec) []byte {
	dst = append(dst, '{')
	if s.Op != "" {
		dst = append(dst, `"op":`...)
		dst = appendJSONString(dst, string(s.Op))
		dst = append(dst, ',')
	}
	dst = append(dst, `"n":`...)
	dst = strconv.AppendInt(dst, int64(s.N), 10)
	dst = append(dst, `,"stencil":`...)
	dst = appendJSONString(dst, s.Stencil)
	dst = append(dst, `,"shape":`...)
	dst = appendJSONString(dst, s.Shape)
	dst = append(dst, `,"machine":{"type":`...)
	dst = appendJSONString(dst, s.Machine.Type)
	if s.Machine.Procs != 0 {
		dst = append(dst, `,"procs":`...)
		dst = strconv.AppendInt(dst, int64(s.Machine.Procs), 10)
	}
	if s.Machine.Tflp != 0 {
		dst = append(dst, `,"tflp":`...)
		dst = appendJSONFloat(dst, s.Machine.Tflp)
	}
	if s.Machine.BusCycle != 0 {
		dst = append(dst, `,"b":`...)
		dst = appendJSONFloat(dst, s.Machine.BusCycle)
	}
	if s.Machine.BusOverhead != 0 {
		dst = append(dst, `,"c":`...)
		dst = appendJSONFloat(dst, s.Machine.BusOverhead)
	}
	if s.Machine.Alpha != 0 {
		dst = append(dst, `,"alpha":`...)
		dst = appendJSONFloat(dst, s.Machine.Alpha)
	}
	if s.Machine.Beta != 0 {
		dst = append(dst, `,"beta":`...)
		dst = appendJSONFloat(dst, s.Machine.Beta)
	}
	if s.Machine.PacketWords != 0 {
		dst = append(dst, `,"packet":`...)
		dst = appendJSONFloat(dst, s.Machine.PacketWords)
	}
	if s.Machine.SwitchTime != 0 {
		dst = append(dst, `,"w":`...)
		dst = appendJSONFloat(dst, s.Machine.SwitchTime)
	}
	if s.Machine.ReadsOnly {
		dst = append(dst, `,"reads_only":true`...)
	}
	if s.Machine.ConvHW {
		dst = append(dst, `,"convergence_hardware":true`...)
	}
	dst = append(dst, '}')
	if s.Procs != 0 {
		dst = append(dst, `,"procs":`...)
		dst = strconv.AppendInt(dst, int64(s.Procs), 10)
	}
	if s.Target != 0 {
		dst = append(dst, `,"target":`...)
		dst = appendJSONFloat(dst, s.Target)
	}
	if s.PointsPerProc != 0 {
		dst = append(dst, `,"points_per_proc":`...)
		dst = appendJSONFloat(dst, s.PointsPerProc)
	}
	return append(dst, '}')
}

// appendSweepResult appends one SweepResultJSON.
func appendSweepResult(dst []byte, r *SweepResultJSON) []byte {
	dst = append(dst, `{"index":`...)
	dst = strconv.AppendInt(dst, int64(r.Index), 10)
	dst = append(dst, `,"spec":`...)
	dst = appendSpec(dst, &r.Spec)
	dst = append(dst, `,"cache_hit":`...)
	dst = appendBool(dst, r.CacheHit)
	if r.Procs != 0 {
		dst = append(dst, `,"procs":`...)
		dst = strconv.AppendInt(dst, int64(r.Procs), 10)
	}
	if r.ProcsUsed != 0 {
		dst = append(dst, `,"procs_used":`...)
		dst = appendJSONFloat(dst, r.ProcsUsed)
	}
	if r.Area != 0 {
		dst = append(dst, `,"area":`...)
		dst = appendJSONFloat(dst, r.Area)
	}
	if r.CycleTime != 0 {
		dst = append(dst, `,"cycle_time":`...)
		dst = appendJSONFloat(dst, r.CycleTime)
	}
	if r.Speedup != 0 {
		dst = append(dst, `,"speedup":`...)
		dst = appendJSONFloat(dst, r.Speedup)
	}
	if r.Grid != 0 {
		dst = append(dst, `,"grid":`...)
		dst = strconv.AppendInt(dst, int64(r.Grid), 10)
	}
	if r.Value != 0 {
		dst = append(dst, `,"value":`...)
		dst = appendJSONFloat(dst, r.Value)
	}
	if r.Error != "" {
		dst = append(dst, `,"error":`...)
		dst = appendJSONString(dst, r.Error)
	}
	return append(dst, '}')
}

// appendSweepStats appends one SweepStats object.
func appendSweepStats(dst []byte, st *SweepStats) []byte {
	dst = append(dst, `{"specs":`...)
	dst = strconv.AppendInt(dst, int64(st.Specs), 10)
	dst = append(dst, `,"cache_hits":`...)
	dst = strconv.AppendInt(dst, int64(st.CacheHits), 10)
	dst = append(dst, `,"evaluated":`...)
	dst = strconv.AppendInt(dst, int64(st.Evaluated), 10)
	dst = append(dst, `,"errors":`...)
	dst = strconv.AppendInt(dst, int64(st.Errors), 10)
	return append(dst, '}')
}

// appendStreamResultLine appends one NDJSON result line of
// POST /v2/sweeps/stream — {"result":{...}} plus the newline
// json.Encoder.Encode used to emit.
func appendStreamResultLine(dst []byte, r *SweepResultJSON) []byte {
	dst = append(dst, `{"result":`...)
	dst = appendSweepResult(dst, r)
	return append(dst, '}', '\n')
}

// appendStreamDoneLine appends the final NDJSON line —
// {"done":true,"stats":{...}} plus newline.
func appendStreamDoneLine(dst []byte, st *SweepStats) []byte {
	dst = append(dst, `{"done":true,"stats":`...)
	dst = appendSweepStats(dst, st)
	return append(dst, '}', '\n')
}

// appendSweepResponse appends the full v1 /sweep body straight from the
// engine results — {"results":[...],"stats":{...}} plus newline —
// without materializing the intermediate []SweepResultJSON.
func appendSweepResponse(dst []byte, results []sweep.Result, st *SweepStats) []byte {
	dst = append(dst, `{"results":[`...)
	for i := range results {
		if i > 0 {
			dst = append(dst, ',')
		}
		jr := sweepResultJSON(results[i])
		dst = appendSweepResult(dst, &jr)
	}
	dst = append(dst, `],"stats":`...)
	dst = appendSweepStats(dst, st)
	return append(dst, '}', '\n')
}

// appendJobResultsPage appends the full GET /v2/jobs/{id}/results body
// — the JobResultsResponse shape — straight from a zero-copy slab page.
func appendJobResultsPage(dst []byte, jobID, state string, results []sweep.Result, nextCursor int, done bool) []byte {
	dst = append(dst, `{"job_id":`...)
	dst = appendJSONString(dst, jobID)
	dst = append(dst, `,"state":`...)
	dst = appendJSONString(dst, state)
	dst = append(dst, `,"results":[`...)
	for i := range results {
		if i > 0 {
			dst = append(dst, ',')
		}
		jr := sweepResultJSON(results[i])
		dst = appendSweepResult(dst, &jr)
	}
	dst = append(dst, `],"next_cursor":"`...)
	dst = strconv.AppendInt(dst, int64(nextCursor), 10)
	dst = append(dst, `","done":`...)
	dst = appendBool(dst, done)
	return append(dst, '}', '\n')
}
