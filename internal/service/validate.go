package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"optspeed/internal/jobs"
	"optspeed/internal/sweep"
)

// decodeBody decodes a JSON request body with the configured size cap,
// rejecting unknown fields. It reports the failure as a requestProblem
// so v1 and v2 handlers render it in their own envelope.
func (s *Server) decodeBody(r *http.Request, w http.ResponseWriter, v any) *requestProblem {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &requestProblem{
				status: http.StatusRequestEntityTooLarge,
				code:   codeTooLarge,
				msg:    fmt.Sprintf("request body exceeds %d bytes", s.maxBody),
			}
		}
		return &requestProblem{
			status: http.StatusBadRequest,
			code:   codeInvalidRequest,
			msg:    fmt.Sprintf("bad request body: %v", err),
		}
	}
	return nil
}

// sweepJobRequest is the single validation layer for every surface that
// accepts a sweep body (v1 /sweep, v2 job submission, v2 streaming): it
// enforces the expanded-size limit — including against adversarial
// spaces whose axis product overflows — and maps the wire request onto
// a jobs.Request, preserving the space-only fast path. The error
// messages are part of the v1 byte-compatibility contract.
func (s *Server) sweepJobRequest(req SweepRequest) (jobs.Request, *requestProblem) {
	specs := req.Specs
	spaceOnly := false
	if req.Space != nil {
		// Size() saturates at math.MaxInt on overflowing axis products,
		// and the two-step comparison avoids overflowing the sum, so a
		// crafted space cannot slip past the limit into Expand.
		size := req.Space.Size()
		if size > s.maxSpecs || len(specs) > s.maxSpecs-size {
			return jobs.Request{}, &requestProblem{
				status: http.StatusRequestEntityTooLarge,
				code:   codeTooLarge,
				msg:    fmt.Sprintf("sweep of %d+%d specs exceeds the limit of %d", len(specs), size, s.maxSpecs),
			}
		}
		spaceOnly = len(specs) == 0 && size > 0
		if !spaceOnly {
			specs = append(specs, req.Space.Expand()...)
		}
	}
	if len(specs) == 0 && !spaceOnly {
		return jobs.Request{}, &requestProblem{
			status: http.StatusBadRequest,
			code:   codeInvalidRequest,
			msg:    "empty sweep: provide specs or a space",
		}
	}
	if len(specs) > s.maxSpecs {
		return jobs.Request{}, &requestProblem{
			status: http.StatusRequestEntityTooLarge,
			code:   codeTooLarge,
			msg:    fmt.Sprintf("sweep of %d specs exceeds the limit of %d", len(specs), s.maxSpecs),
		}
	}
	if spaceOnly {
		// A pure space request keeps its Cartesian structure, so the
		// engine can pre-resolve each axis value once and batch the
		// speedup-over-procs fast path; mixed requests fall back to the
		// flat spec list.
		return jobs.Request{Kind: jobs.KindSweep, Space: req.Space}, nil
	}
	return jobs.Request{Kind: jobs.KindSweep, Specs: specs}, nil
}

// optimizeJobRequest maps one optimize query onto a single-spec
// jobs.Request — the same core that v1 /optimize runs synchronously.
func optimizeJobRequest(req OptimizeRequest) jobs.Request {
	op := sweep.OpOptimize
	if req.Snapped {
		op = sweep.OpOptimizeSnapped
	}
	return jobs.Request{Kind: jobs.KindOptimize, Specs: []sweep.Spec{{
		Op: op, N: req.N, Stencil: req.Stencil, Shape: req.Shape, Machine: req.Machine,
	}}}
}
