package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"optspeed/internal/jobs"
	"optspeed/internal/sweep"
)

// decodeBody decodes a JSON request body with the configured size cap,
// rejecting unknown fields. It reports the failure as a requestProblem
// so v1 and v2 handlers render it in their own envelope.
func (s *Server) decodeBody(r *http.Request, w http.ResponseWriter, v any) *requestProblem {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &requestProblem{
				status: http.StatusRequestEntityTooLarge,
				code:   codeTooLarge,
				msg:    fmt.Sprintf("request body exceeds %d bytes", s.maxBody),
			}
		}
		return &requestProblem{
			status: http.StatusBadRequest,
			code:   codeInvalidRequest,
			msg:    fmt.Sprintf("bad request body: %v", err),
		}
	}
	return nil
}

// sweepJobRequest is the single validation layer for every surface that
// accepts a sweep body (v1 /sweep, v2 job submission, v2 streaming): it
// enforces the expanded-size limit — including against adversarial
// spaces whose axis product overflows — and maps the wire request onto
// a jobs.Request, preserving the space-only fast path. The error
// messages are part of the v1 byte-compatibility contract.
func (s *Server) sweepJobRequest(req SweepRequest) (jobs.Request, *requestProblem) {
	specs := req.Specs
	spaceOnly := false
	if req.Space != nil {
		// Size() saturates at math.MaxInt on overflowing axis products,
		// and the two-step comparison avoids overflowing the sum, so a
		// crafted space cannot slip past the limit into Expand.
		size := req.Space.Size()
		if size > s.maxSpecs || len(specs) > s.maxSpecs-size {
			return jobs.Request{}, &requestProblem{
				status: http.StatusRequestEntityTooLarge,
				code:   codeTooLarge,
				msg:    fmt.Sprintf("sweep of %d+%d specs exceeds the limit of %d", len(specs), size, s.maxSpecs),
			}
		}
		spaceOnly = len(specs) == 0 && size > 0
		if !spaceOnly {
			specs = append(specs, req.Space.Expand()...)
		}
	}
	if len(specs) == 0 && !spaceOnly {
		return jobs.Request{}, &requestProblem{
			status: http.StatusBadRequest,
			code:   codeInvalidRequest,
			msg:    "empty sweep: provide specs or a space",
		}
	}
	if len(specs) > s.maxSpecs {
		return jobs.Request{}, &requestProblem{
			status: http.StatusRequestEntityTooLarge,
			code:   codeTooLarge,
			msg:    fmt.Sprintf("sweep of %d specs exceeds the limit of %d", len(specs), s.maxSpecs),
		}
	}
	if prob := badOpProblem(req); prob != nil {
		return jobs.Request{}, prob
	}
	if spaceOnly {
		// A pure space request keeps its Cartesian structure, so the
		// engine can pre-resolve each axis value once and batch the
		// speedup-over-procs fast path; mixed requests fall back to the
		// flat spec list.
		return jobs.Request{Kind: jobs.KindSweep, Space: req.Space}, nil
	}
	return jobs.Request{Kind: jobs.KindSweep, Specs: specs}, nil
}

// badOpProblem returns the validation failure for the first unknown op
// in the request, or nil. Rejecting here — before the admission gate
// acquires a slot and before the job store mints a job — turns a typo'd
// op into an immediate 400 instead of an admitted request that fails
// per-result at evaluation time. A space's op covers every spec it
// expands to, so checking the space and the explicit specs covers the
// whole request.
func badOpProblem(req SweepRequest) *requestProblem {
	check := func(op sweep.Op) *requestProblem {
		if op.Valid() {
			return nil
		}
		return &requestProblem{
			status: http.StatusBadRequest,
			code:   codeInvalidRequest,
			msg:    fmt.Sprintf("unknown op %q (known ops: %s)", op, knownOpList()),
		}
	}
	if req.Space != nil {
		if prob := check(req.Space.Op); prob != nil {
			return prob
		}
	}
	for _, sp := range req.Specs {
		if prob := check(sp.Op); prob != nil {
			return prob
		}
	}
	return nil
}

// knownOpList renders the engine's op set for the unknown-op message.
func knownOpList() string {
	ops := sweep.Ops()
	var b []byte
	for i, op := range ops {
		if i > 0 {
			b = append(b, ", "...)
		}
		b = append(b, op...)
	}
	return string(b)
}

// optimizeJobRequest maps one optimize query onto a single-spec
// jobs.Request — the same core that v1 /optimize runs synchronously.
func optimizeJobRequest(req OptimizeRequest) jobs.Request {
	op := sweep.OpOptimize
	if req.Snapped {
		op = sweep.OpOptimizeSnapped
	}
	return jobs.Request{Kind: jobs.KindOptimize, Specs: []sweep.Spec{{
		Op: op, N: req.N, Stencil: req.Stencil, Shape: req.Shape, Machine: req.Machine,
	}}}
}
