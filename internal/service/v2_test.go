package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"optspeed/internal/core"
	"optspeed/internal/sweep"
)

// newTestServerWith builds a closable test server around cfg.
func newTestServerWith(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func doJSON(t *testing.T, method, url, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// pollJob GETs the job until pred holds or the deadline lapses.
func pollJob(t *testing.T, base, id string, pred func(JobJSON) bool) JobJSON {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, raw := doJSON(t, http.MethodGet, base+"/v2/jobs/"+id, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d: %s", resp.StatusCode, raw)
		}
		var j JobJSON
		if err := json.Unmarshal(raw, &j); err != nil {
			t.Fatal(err)
		}
		if pred(j) {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never satisfied predicate; last %+v", id, j)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func terminal(j JobJSON) bool {
	switch j.State {
	case "succeeded", "failed", "cancelled":
		return true
	}
	return false
}

// slowSweepBody is a Workers:1-sized sweep that takes long enough to
// observe and cancel mid-flight: snapped optimization at large n
// enumerates working rectangles, costing tens of milliseconds per spec
// (distinct n values, so the cache never helps).
func slowSweepBody(t *testing.T) string {
	t.Helper()
	specs := make([]sweep.Spec, 300)
	for i := range specs {
		specs[i] = sweep.Spec{
			Op: sweep.OpOptimizeSnapped, N: 4096 + 8*i, Stencil: "5-point", Shape: "square",
			Machine: core.MachineSpec{Type: "sync-bus"},
		}
	}
	raw, err := json.Marshal(JobSubmitRequest{Kind: "sweep", Sweep: &SweepRequest{Specs: specs}})
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func TestJobLifecycleOverHTTP(t *testing.T) {
	_, ts := newTestServerWith(t, Config{})
	body := `{"kind":"sweep","sweep":{"space":{"ns":[64,128],"stencils":["5-point","9-point"],` +
		`"shapes":["strip","square"],"machines":[{"type":"sync-bus"}]}}}`
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v2/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, raw)
	}
	var accepted JobJSON
	if err := json.Unmarshal(raw, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.ID == "" || accepted.Kind != "sweep" {
		t.Fatalf("accepted job %+v", accepted)
	}
	if loc := resp.Header.Get("Location"); loc != "/v2/jobs/"+accepted.ID {
		t.Fatalf("Location %q", loc)
	}

	fin := pollJob(t, ts.URL, accepted.ID, terminal)
	const total = 2 * 2 * 2
	if fin.State != "succeeded" {
		t.Fatalf("job finished %q (%s)", fin.State, fin.Reason)
	}
	p := fin.Progress
	if p.Total != total || p.Completed != total || p.Errors != 0 ||
		p.Evaluated+p.CacheHits != total {
		t.Fatalf("progress %+v", p)
	}
	if fin.StartedAt == nil || fin.FinishedAt == nil {
		t.Fatalf("terminal job missing timestamps: %+v", fin)
	}

	// Paginate in pages of 3 until done; every submission index arrives
	// exactly once.
	seen := map[int]bool{}
	cursor := "0"
	for {
		resp, raw := doJSON(t, http.MethodGet,
			fmt.Sprintf("%s/v2/jobs/%s/results?cursor=%s&limit=3", ts.URL, accepted.ID, cursor), "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("results status %d: %s", resp.StatusCode, raw)
		}
		var page JobResultsResponse
		if err := json.Unmarshal(raw, &page); err != nil {
			t.Fatal(err)
		}
		for _, r := range page.Results {
			if seen[r.Index] {
				t.Fatalf("index %d served twice", r.Index)
			}
			seen[r.Index] = true
			if r.Error != "" || r.Speedup <= 0 {
				t.Fatalf("bad result %+v", r)
			}
		}
		if page.Done {
			break
		}
		cursor = page.NextCursor
	}
	if len(seen) != total {
		t.Fatalf("paginated %d results, want %d", len(seen), total)
	}

	// The jobs list includes it; cancelling a terminal job is a 409
	// conflict with the stable already_terminal code.
	resp, raw = doJSON(t, http.MethodGet, ts.URL+"/v2/jobs", "")
	var list JobListResponse
	if err := json.Unmarshal(raw, &list); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(list.Jobs) != 1 || list.Jobs[0].ID != accepted.ID {
		t.Fatalf("list %d: %+v", resp.StatusCode, list)
	}
	resp, raw = doJSON(t, http.MethodDelete, ts.URL+"/v2/jobs/"+accepted.ID, "")
	var conflict v2ErrorResponse
	if err := json.Unmarshal(raw, &conflict); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict || conflict.Error.Code != codeAlreadyTerminal {
		t.Fatalf("cancel of terminal job: %d %s", resp.StatusCode, raw)
	}
}

func TestJobSubmitOptimize(t *testing.T) {
	_, ts := newTestServerWith(t, Config{})
	body := `{"optimize":{"n":256,"stencil":"5-point","shape":"square","machine":{"type":"sync-bus"}}}`
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v2/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, raw)
	}
	var accepted JobJSON
	if err := json.Unmarshal(raw, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.Kind != "optimize" {
		t.Fatalf("inferred kind %q", accepted.Kind)
	}
	fin := pollJob(t, ts.URL, accepted.ID, terminal)
	if fin.State != "succeeded" || fin.Progress.Total != 1 {
		t.Fatalf("optimize job %+v", fin)
	}
	_, raw = doJSON(t, http.MethodGet, ts.URL+"/v2/jobs/"+accepted.ID+"/results", "")
	var page JobResultsResponse
	if err := json.Unmarshal(raw, &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Results) != 1 || page.Results[0].Procs < 1 || page.Results[0].Speedup <= 0 {
		t.Fatalf("optimize result page %+v", page)
	}
}

func TestJobSubmitValidation(t *testing.T) {
	_, ts := newTestServerWith(t, Config{MaxSweepSpecs: 4})
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"no payload", `{}`, http.StatusBadRequest, codeInvalidRequest},
		{"both payloads", `{"sweep":{"specs":[]},"optimize":{"n":64,"stencil":"5-point","shape":"square","machine":{"type":"sync-bus"}}}`,
			http.StatusBadRequest, codeInvalidRequest},
		{"kind mismatch", `{"kind":"optimize","sweep":{"specs":[]}}`, http.StatusBadRequest, codeInvalidRequest},
		{"empty sweep", `{"sweep":{}}`, http.StatusBadRequest, codeInvalidRequest},
		{"oversized sweep", `{"sweep":{"space":{"ns":[64,128,256],"stencils":["5-point","9-point"],` +
			`"shapes":["square"],"machines":[{"type":"sync-bus"}]}}}`, http.StatusRequestEntityTooLarge, codeTooLarge},
		{"malformed json", `{"sweep":`, http.StatusBadRequest, codeInvalidRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v2/jobs", tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, raw)
			}
			var env v2ErrorResponse
			if err := json.Unmarshal(raw, &env); err != nil {
				t.Fatalf("non-envelope error body %s: %v", raw, err)
			}
			if env.Error.Code != tc.code || env.Error.Message == "" || env.Error.RequestID == "" {
				t.Fatalf("envelope %+v, want code %q with message and request id", env.Error, tc.code)
			}
		})
	}
}

func TestJobNotFound(t *testing.T) {
	_, ts := newTestServerWith(t, Config{})
	for _, tc := range []struct{ method, path string }{
		{http.MethodGet, "/v2/jobs/deadbeef"},
		{http.MethodGet, "/v2/jobs/deadbeef/results"},
		{http.MethodDelete, "/v2/jobs/deadbeef"},
	} {
		resp, raw := doJSON(t, tc.method, ts.URL+tc.path, "")
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s: status %d: %s", tc.method, tc.path, resp.StatusCode, raw)
		}
		var env v2ErrorResponse
		if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code != codeNotFound {
			t.Fatalf("%s %s: envelope %s", tc.method, tc.path, raw)
		}
	}
}

func TestJobResultsBadCursor(t *testing.T) {
	_, ts := newTestServerWith(t, Config{})
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v2/jobs",
		`{"sweep":{"space":{"ns":[64],"stencils":["5-point"],"shapes":["square"],"machines":[{"type":"sync-bus"}]}}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var accepted JobJSON
	if err := json.Unmarshal(raw, &accepted); err != nil {
		t.Fatal(err)
	}
	pollJob(t, ts.URL, accepted.ID, terminal)
	for _, q := range []string{"cursor=abc", "cursor=99999", "limit=-2", "cursor=-1"} {
		resp, raw := doJSON(t, http.MethodGet, ts.URL+"/v2/jobs/"+accepted.ID+"/results?"+q, "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d: %s", q, resp.StatusCode, raw)
		}
	}
}

func TestJobCancelMidRunOverHTTP(t *testing.T) {
	_, ts := newTestServerWith(t, Config{Engine: sweep.New(sweep.Options{Workers: 1})})
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v2/jobs", slowSweepBody(t))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var accepted JobJSON
	if err := json.Unmarshal(raw, &accepted); err != nil {
		t.Fatal(err)
	}
	pollJob(t, ts.URL, accepted.ID, func(j JobJSON) bool { return j.Progress.Completed >= 1 })
	resp, raw = doJSON(t, http.MethodDelete, ts.URL+"/v2/jobs/"+accepted.ID, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d %s", resp.StatusCode, raw)
	}
	fin := pollJob(t, ts.URL, accepted.ID, terminal)
	if fin.State != "cancelled" {
		t.Fatalf("job finished %q, want cancelled", fin.State)
	}
	if fin.Progress.Completed >= fin.Progress.Total {
		t.Fatalf("cancelled job completed everything: %+v", fin.Progress)
	}
	// Partial results stay readable after cancellation.
	resp, raw = doJSON(t, http.MethodGet, ts.URL+"/v2/jobs/"+accepted.ID+"/results?limit=5", "")
	var page JobResultsResponse
	if err := json.Unmarshal(raw, &page); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(page.Results) == 0 {
		t.Fatalf("post-cancel results: %d %+v", resp.StatusCode, page)
	}
}

func TestJobStoreFullOverHTTP(t *testing.T) {
	_, ts := newTestServerWith(t, Config{
		Engine: sweep.New(sweep.Options{Workers: 1}), JobCapacity: 1,
	})
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v2/jobs", slowSweepBody(t))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var first JobJSON
	if err := json.Unmarshal(raw, &first); err != nil {
		t.Fatal(err)
	}
	resp, raw = doJSON(t, http.MethodPost, ts.URL+"/v2/jobs",
		`{"sweep":{"space":{"ns":[64],"stencils":["5-point"],"shapes":["square"],"machines":[{"type":"sync-bus"}]}}}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d %s", resp.StatusCode, raw)
	}
	var env v2ErrorResponse
	if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code != codeStoreFull {
		t.Fatalf("envelope %s", raw)
	}
	doJSON(t, http.MethodDelete, ts.URL+"/v2/jobs/"+first.ID, "")
}

func TestJobTTLExpiryOverHTTP(t *testing.T) {
	_, ts := newTestServerWith(t, Config{JobTTL: 30 * time.Millisecond})
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v2/jobs",
		`{"sweep":{"space":{"ns":[64],"stencils":["5-point"],"shapes":["square"],"machines":[{"type":"sync-bus"}]}}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var accepted JobJSON
	if err := json.Unmarshal(raw, &accepted); err != nil {
		t.Fatal(err)
	}
	pollJob(t, ts.URL, accepted.ID, terminal)
	time.Sleep(60 * time.Millisecond)
	resp, raw = doJSON(t, http.MethodGet, ts.URL+"/v2/jobs/"+accepted.ID, "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("expired job GET: %d %s", resp.StatusCode, raw)
	}
}

func TestSweepStreamNDJSON(t *testing.T) {
	_, ts := newTestServerWith(t, Config{})
	body := `{"space":{"op":"speedup","ns":[64,128],"stencils":["5-point"],` +
		`"shapes":["square"],"machines":[{"type":"sync-bus"}],"procs":[2,4,8]}}`
	resp, err := http.Post(ts.URL+"/v2/sweeps/stream", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	const total = 2 * 3
	var results int
	var sawDone bool
	sc := bufio.NewScanner(resp.Body)
	seen := map[int]bool{}
	for sc.Scan() {
		var line StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Result != nil:
			if sawDone {
				t.Fatal("result after done line")
			}
			if seen[line.Result.Index] {
				t.Fatalf("index %d streamed twice", line.Result.Index)
			}
			seen[line.Result.Index] = true
			if line.Result.Error != "" || line.Result.Value <= 0 {
				t.Fatalf("bad streamed result %+v", line.Result)
			}
			results++
		case line.Done:
			sawDone = true
			if line.Stats == nil || line.Stats.Specs != total || line.Stats.Errors != 0 {
				t.Fatalf("done stats %+v", line.Stats)
			}
		default:
			t.Fatalf("unrecognized line %q", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if results != total || !sawDone {
		t.Fatalf("streamed %d results (done=%v), want %d", results, sawDone, total)
	}
}

func TestSweepStreamValidation(t *testing.T) {
	_, ts := newTestServerWith(t, Config{})
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v2/sweeps/stream", `{}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty stream request: %d %s", resp.StatusCode, raw)
	}
	var env v2ErrorResponse
	if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code != codeInvalidRequest {
		t.Fatalf("envelope %s", raw)
	}
}

func TestRequestIDMiddleware(t *testing.T) {
	_, ts := newTestServerWith(t, Config{})
	// A well-formed client id is honored and echoed.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v2/jobs/missing", nil)
	req.Header.Set("X-Request-ID", "client-id-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var env v2ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-id-42" {
		t.Fatalf("echoed id %q", got)
	}
	if env.Error.RequestID != "client-id-42" {
		t.Fatalf("envelope id %q", env.Error.RequestID)
	}
	// A malformed id is replaced with a generated one.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "bad id with spaces")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := resp.Header.Get("X-Request-ID")
	if got == "" || strings.Contains(got, " ") {
		t.Fatalf("malformed id passed through: %q", got)
	}
}

func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(&syncWriter{mu: &mu, w: &buf}, nil))
	_, ts := newTestServerWith(t, Config{Logger: logger})
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/architectures", nil)
	req.Header.Set("X-Request-ID", "log-probe-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	var entry map[string]any
	if err := json.Unmarshal([]byte(out), &entry); err != nil {
		t.Fatalf("access log is not one JSON line: %q", out)
	}
	if entry["request_id"] != "log-probe-1" || entry["path"] != "/v1/architectures" ||
		entry["method"] != http.MethodGet || entry["status"] != float64(http.StatusOK) {
		t.Fatalf("access log entry %+v", entry)
	}
	if _, ok := entry["duration"]; !ok {
		t.Fatalf("access log entry lacks duration: %+v", entry)
	}
}

// syncWriter guards the log buffer: the handler goroutine writes while
// the test reads.
type syncWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func TestMetricsEndpointInstrumented(t *testing.T) {
	_, ts := newTestServerWith(t, Config{})
	// First call creates the metrics entry; the second must observe it.
	doJSON(t, http.MethodGet, ts.URL+"/v1/metrics", "")
	_, raw := doJSON(t, http.MethodGet, ts.URL+"/v1/metrics", "")
	var got MetricsResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	ep, ok := got.Endpoints["metrics"]
	if !ok || ep.Count < 1 {
		t.Fatalf("metrics endpoint not instrumented: %+v", got.Endpoints)
	}
}
