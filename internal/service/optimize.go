package service

import (
	"errors"
	"net/http"

	"optspeed/internal/core"
	"optspeed/internal/sweep"
)

// OptimizeRequest is one model query. Machine fields left zero take the
// calibrated defaults; Snapped selects working-rectangle snapping.
type OptimizeRequest struct {
	N       int              `json:"n"`
	Stencil string           `json:"stencil"`
	Shape   string           `json:"shape"`
	Machine core.MachineSpec `json:"machine"`
	Snapped bool             `json:"snapped,omitempty"`
}

// OptimizeResponse reports the optimal allocation.
type OptimizeResponse struct {
	N         int     `json:"n"`
	Stencil   string  `json:"stencil"`
	Shape     string  `json:"shape"`
	Arch      string  `json:"arch"`
	Procs     int     `json:"procs"`
	Area      float64 `json:"area"`
	CycleTime float64 `json:"cycle_time"`
	Speedup   float64 `json:"speedup"`
	UsedAll   bool    `json:"used_all"`
	Single    bool    `json:"single"`
	Interior  bool    `json:"interior"`
	CacheHit  bool    `json:"cache_hit"`
}

// handleOptimize is the v1 synchronous adapter: the query runs as a
// single-spec request through the same jobs core as v2, bound to the
// request context and never retained.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.admitRequest(w, r); !ok {
		return
	}
	var req OptimizeRequest
	if prob := s.decodeBody(r, w, &req); prob != nil {
		prob.writeV1(s, w, r)
		return
	}
	release, ok := s.admitEvaluation(w, r, 1)
	if !ok {
		return
	}
	defer release()
	results, err := s.store.RunSync(r.Context(), optimizeJobRequest(req))
	if err != nil {
		s.writeSyncFailure(w, r)
		return
	}
	res := results[0]
	if res.Err != nil {
		// A recovered panic is a server defect: 500, without the panic
		// text. Everything else is a bad spec.
		if errors.Is(res.Err, sweep.ErrEvaluationPanic) {
			s.writeError(w, r, http.StatusInternalServerError, "internal evaluation error")
			return
		}
		s.writeError(w, r, http.StatusBadRequest, "%v", res.Err)
		return
	}
	s.writeJSON(w, r, http.StatusOK, OptimizeResponse{
		N:         req.N,
		Stencil:   req.Stencil,
		Shape:     req.Shape,
		Arch:      res.Alloc.Arch,
		Procs:     res.Alloc.Procs,
		Area:      res.Alloc.Area,
		CycleTime: res.Alloc.CycleTime,
		Speedup:   res.Alloc.Speedup,
		UsedAll:   res.Alloc.UsedAll,
		Single:    res.Alloc.Single,
		Interior:  res.Alloc.Interior,
		CacheHit:  res.CacheHit,
	})
}
