package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"testing"

	"optspeed/internal/core"
	"optspeed/internal/sweep"
)

// encodeJSONLine marshals v exactly the way the handlers used to —
// json.Encoder with default HTML escaping, newline-terminated — the
// reference output every AppendJSON encoder is held to.
func encodeJSONLine(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// trickyStrings exercise every escaping branch of appendJSONString:
// quotes, backslashes, short escapes, generic control bytes, the HTML
// set, multibyte runes, the JS line separators, and invalid UTF-8.
var trickyStrings = []string{
	"",
	"plain",
	`quote " and backslash \`,
	"newline\ntab\tcr\r",
	"control \x01 \x1f \x00 bytes",
	"html <b> & </b> escapes",
	"unicode é ☃ 日本語",
	"line sep \u2028 and \u2029 end",
	"invalid \xff utf8 \xc3\x28 tail",
	"del \x7f survives",
	`sweep: unknown stencil "bogus"`,
}

// trickyFloats exercise the float formatter's branches: fixed vs
// exponent notation, the 1e-6 / 1e21 thresholds, exponent zero
// trimming, negatives, and denormals.
var trickyFloats = []float64{
	0, 1, -1, 0.5, -0.25, 1.0 / 3.0,
	1e-6, 9.9e-7, 1e-7, 1e20, 1e21, 9.999999e20, 1e22, -1e22,
	123456.789, 3.141592653589793, 2.718281828459045e-10,
	math.SmallestNonzeroFloat64, math.MaxFloat64,
	42, 1024, 0.1,
}

func TestAppendJSONStringMatchesEncodingJSON(t *testing.T) {
	for _, s := range trickyStrings {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		got := appendJSONString(nil, s)
		if !bytes.Equal(got, want) {
			t.Errorf("appendJSONString(%q) = %s, encoding/json says %s", s, got, want)
		}
	}
}

func TestAppendJSONFloatMatchesEncodingJSON(t *testing.T) {
	for _, f := range trickyFloats {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		got := appendJSONFloat(nil, f)
		if !bytes.Equal(got, want) {
			t.Errorf("appendJSONFloat(%v) = %s, encoding/json says %s", f, got, want)
		}
	}
}

// wireResults is a corpus of wire results covering every op shape the
// service emits: optimize allocations, scalar speedups, grid searches,
// scaled points, cache hits, spec errors, and machines with every
// override field set.
func wireResults() []SweepResultJSON {
	fullMachine := core.MachineSpec{
		Type: "mesh", Procs: 4096, Tflp: 1e-7, BusCycle: 2.5e-7, BusOverhead: 1e-8,
		Alpha: 1.5e-6, Beta: 4e-9, PacketWords: 8, SwitchTime: 5e-8,
		ReadsOnly: true, ConvHW: true,
	}
	return []SweepResultJSON{
		{Index: 0, Spec: sweep.Spec{N: 512, Stencil: "5-point", Shape: "square",
			Machine: core.MachineSpec{Type: "sync-bus"}},
			Procs: 37, Area: 1234.5678, CycleTime: 3.25e-5, Speedup: 21.7},
		{Index: 1, Spec: sweep.Spec{Op: sweep.OpSpeedup, N: 256, Stencil: "9-point", Shape: "strip",
			Machine: fullMachine, Procs: 64},
			CacheHit: true, Value: 55.5},
		{Index: 2, Spec: sweep.Spec{Op: sweep.OpMinGrid, Stencil: "5-point", Shape: "strip",
			Machine: core.MachineSpec{Type: "banyan"}, Procs: 128},
			Grid: 96},
		{Index: 3, Spec: sweep.Spec{Op: sweep.OpIsoeffGrid, N: 16, Stencil: "13-point", Shape: "square",
			Machine: core.MachineSpec{Type: "hypercube"}, Procs: 32, Target: 0.75},
			Grid: 40, Value: 7},
		{Index: 4, Spec: sweep.Spec{Op: sweep.OpScaled, N: 1024, Stencil: "9-star", Shape: "square",
			Machine: core.MachineSpec{Type: "async-bus"}, PointsPerProc: 64.5},
			ProcsUsed: 16.25, CycleTime: 1e-21, Speedup: 1e21},
		{Index: 5, Spec: sweep.Spec{N: 128, Stencil: "bogus", Shape: "square",
			Machine: core.MachineSpec{Type: "sync-bus"}},
			Error: `sweep: unknown stencil "bogus"`},
		{Index: 6, Spec: sweep.Spec{N: -3, Stencil: "<&>", Shape: "\n",
			Machine: core.MachineSpec{Type: "full-async-bus", Tflp: -2.5}},
			Value: -1e-9, Error: "weird \x01 error \xff"},
		{Index: 7, Spec: sweep.Spec{Op: sweep.OpAmdahl, N: 256, Stencil: "5-point", Shape: "square",
			Machine: core.MachineSpec{Type: "sync-bus"}, Procs: 16},
			Value: 9.876543},
		{Index: 8, Spec: sweep.Spec{Op: sweep.OpGustafson, N: 256, Stencil: "9-star", Shape: "strip",
			Machine: core.MachineSpec{Type: "mesh"}, Procs: 64},
			CacheHit: true, Value: 61.25},
		{Index: 9, Spec: sweep.Spec{Op: sweep.OpCriticalPath, N: 512, Stencil: "13-point", Shape: "square",
			Machine: core.MachineSpec{Type: "banyan", Procs: 256}, Procs: 1024},
			Value: 333.125},
	}
}

func TestAppendSweepResultMatchesEncodingJSON(t *testing.T) {
	for i, jr := range wireResults() {
		want, err := json.Marshal(jr)
		if err != nil {
			t.Fatal(err)
		}
		got := appendSweepResult(nil, &jr)
		if !bytes.Equal(got, want) {
			t.Errorf("result %d:\n got: %s\nwant: %s", i, got, want)
		}
	}
}

func TestAppendStreamLinesMatchEncodingJSON(t *testing.T) {
	for i, jr := range wireResults() {
		jr := jr
		want := encodeJSONLine(t, StreamLine{Result: &jr})
		got := appendStreamResultLine(nil, &jr)
		if !bytes.Equal(got, want) {
			t.Errorf("result line %d:\n got: %s\nwant: %s", i, got, want)
		}
	}
	st := &SweepStats{Specs: 12, CacheHits: 3, Evaluated: 8, Errors: 1}
	want := encodeJSONLine(t, StreamLine{Done: true, Stats: st})
	got := appendStreamDoneLine(nil, st)
	if !bytes.Equal(got, want) {
		t.Errorf("done line:\n got: %s\nwant: %s", got, want)
	}
}

// engineResults builds raw engine results whose wire conversion covers
// the allocation, scaled, grid, and error payloads, including the
// panic-redaction path.
func engineResults() []sweep.Result {
	return []sweep.Result{
		{Index: 0, Spec: sweep.Spec{N: 64, Stencil: "5-point", Shape: "strip",
			Machine: core.MachineSpec{Type: "sync-bus"}},
			Alloc: core.Allocation{Arch: "sync-bus", Procs: 9, Area: 455.11,
				CycleTime: 4.25e-6, Speedup: 8.31}, Value: 8.31},
		{Index: 1, Spec: sweep.Spec{Op: sweep.OpSpeedup, N: 128, Stencil: "9-point", Shape: "square",
			Machine: core.MachineSpec{Type: "mesh"}, Procs: 16},
			CacheHit: true, Value: 14.9},
		{Index: 2, Spec: sweep.Spec{Op: sweep.OpScaled, N: 512, Stencil: "5-point", Shape: "square",
			Machine: core.MachineSpec{Type: "hypercube"}, PointsPerProc: 32},
			Scaled: core.ScaledPoint{Procs: 8192.5, CycleTime: 2e-7, Speedup: 1.25e3}, Value: 1.25e3},
		{Index: 3, Spec: sweep.Spec{N: 32, Stencil: "nope", Shape: "square",
			Machine: core.MachineSpec{Type: "sync-bus"}},
			Err: errors.New(`sweep: unknown stencil "nope"`)},
		{Index: 4, Spec: sweep.Spec{N: 96, Stencil: "5-point", Shape: "strip",
			Machine: core.MachineSpec{Type: "banyan"}},
			Err: fmt.Errorf("%w: boom", sweep.ErrEvaluationPanic)},
	}
}

func TestAppendSweepResponseMatchesEncodingJSON(t *testing.T) {
	results := engineResults()
	var stats SweepStats
	resp := SweepResponse{Results: make([]SweepResultJSON, len(results))}
	for i := range results {
		stats.observe(&results[i])
		resp.Results[i] = sweepResultJSON(results[i])
	}
	resp.Stats = stats
	want := encodeJSONLine(t, resp)
	got := appendSweepResponse(nil, results, &stats)
	if !bytes.Equal(got, want) {
		t.Errorf("sweep response:\n got: %s\nwant: %s", got, want)
	}
	// The empty sweep still encodes a non-nil results array.
	empty := SweepResponse{Results: []SweepResultJSON{}}
	want = encodeJSONLine(t, empty)
	got = appendSweepResponse(nil, nil, &SweepStats{})
	if !bytes.Equal(got, want) {
		t.Errorf("empty sweep response:\n got: %s\nwant: %s", got, want)
	}
}

func TestAppendJobResultsPageMatchesEncodingJSON(t *testing.T) {
	results := engineResults()
	resp := JobResultsResponse{
		JobID:      "a1b2c3d4e5f60718",
		State:      "running",
		Results:    make([]SweepResultJSON, len(results)),
		NextCursor: "261",
		Done:       false,
	}
	for i := range results {
		resp.Results[i] = sweepResultJSON(results[i])
	}
	want := encodeJSONLine(t, resp)
	got := appendJobResultsPage(nil, "a1b2c3d4e5f60718", "running", results, 261, false)
	if !bytes.Equal(got, want) {
		t.Errorf("results page:\n got: %s\nwant: %s", got, want)
	}
	// Empty terminal page.
	want = encodeJSONLine(t, JobResultsResponse{
		JobID: "x", State: "succeeded", Results: []SweepResultJSON{}, NextCursor: "0", Done: true,
	})
	got = appendJobResultsPage(nil, "x", "succeeded", nil, 0, true)
	if !bytes.Equal(got, want) {
		t.Errorf("empty page:\n got: %s\nwant: %s", got, want)
	}
}

// TestWireEncoderAllocBudget pins the serving path's allocation story:
// encoding results into a pre-grown buffer allocates nothing per
// result (the one allocation the ≤1-per-result budget allows is the
// pooled buffer itself, amortized across a whole chunk or page).
func TestWireEncoderAllocBudget(t *testing.T) {
	results := engineResults()
	buf := make([]byte, 0, 1<<16)
	var stats SweepStats
	for i := range results {
		stats.observe(&results[i])
	}
	allocs := testing.AllocsPerRun(200, func() {
		buf = appendSweepResponse(buf[:0], results, &stats)
	})
	if allocs > 0 {
		t.Fatalf("appendSweepResponse allocates %.1f/op over %d results, budget is 0", allocs, len(results))
	}
	allocs = testing.AllocsPerRun(200, func() {
		buf = appendJobResultsPage(buf[:0], "a1b2c3d4e5f60718", "running", results, 5, false)
	})
	if allocs > 0 {
		t.Fatalf("appendJobResultsPage allocates %.1f/op, budget is 0", allocs)
	}
	jr := sweepResultJSON(results[0])
	allocs = testing.AllocsPerRun(200, func() {
		buf = appendStreamResultLine(buf[:0], &jr)
	})
	if allocs > 0 {
		t.Fatalf("appendStreamResultLine allocates %.1f/op, budget is 0", allocs)
	}
}
