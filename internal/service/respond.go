package service

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// writeJSON emits compact JSON: sweep responses at the request limit run
// to tens of MB, where indentation is pure wire overhead.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeJSONPretty indents the small human-facing catalog and metrics
// payloads.
func writeJSONPretty(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorResponse is the v1 error envelope. Its shape is part of the
// byte-for-byte v1 compatibility contract and must not change.
type errorResponse struct {
	Error string `json:"error"`
}

// writeError emits a v1-style error.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// v2 error codes. Stable machine-readable strings; the human text in
// Message may change freely.
const (
	codeInvalidRequest = "invalid_request"
	codeNotFound       = "not_found"
	codeTooLarge       = "too_large"
	codeStoreFull      = "store_full"
	codeUnavailable    = "unavailable"
	codeInternal       = "internal"
)

// apiErrorBody is the v2 error payload: a stable code, a human
// message, and the request id so one client-side line is enough to
// correlate with the server's access log.
type apiErrorBody struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

// v2ErrorResponse is the uniform v2 error envelope.
type v2ErrorResponse struct {
	Error apiErrorBody `json:"error"`
}

// writeV2Error emits a v2 error envelope, stamping the request id from
// the request context.
func writeV2Error(w http.ResponseWriter, r *http.Request, status int, code, format string, args ...any) {
	writeJSON(w, status, v2ErrorResponse{Error: apiErrorBody{
		Code:      code,
		Message:   fmt.Sprintf(format, args...),
		RequestID: RequestIDFrom(r.Context()),
	}})
}

// requestProblem is a validation failure carried between the shared
// validation layer and the version-specific error writers: v1 renders
// it as {"error": msg}, v2 as the code/message envelope.
type requestProblem struct {
	status int
	code   string
	msg    string
}

func (p *requestProblem) writeV1(w http.ResponseWriter) {
	writeError(w, p.status, "%s", p.msg)
}

func (p *requestProblem) writeV2(w http.ResponseWriter, r *http.Request) {
	writeV2Error(w, r, p.status, p.code, "%s", p.msg)
}
