package service

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
)

// logEncodeError records a response-encoding or response-write failure
// at error level, tagged with the middleware's request id so the access
// log line and the failure correlate. Encode errors were previously
// discarded, which hid both marshal bugs (unrepresentable values) and
// mid-body client disconnects on large sweep responses.
func (s *Server) logEncodeError(r *http.Request, err error) {
	if s.logger == nil || err == nil {
		return
	}
	s.logger.LogAttrs(r.Context(), slog.LevelError, "response encode failed",
		slog.String("request_id", RequestIDFrom(r.Context())),
		slog.String("path", r.URL.Path),
		slog.String("error", err.Error()),
	)
}

// writeJSON emits compact JSON: sweep responses at the request limit run
// to tens of MB, where indentation is pure wire overhead.
func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logEncodeError(r, err)
	}
}

// writeJSONPretty indents the small human-facing catalog and metrics
// payloads.
func (s *Server) writeJSONPretty(w http.ResponseWriter, r *http.Request, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.logEncodeError(r, err)
	}
}

// writeRaw emits a pre-encoded JSON body built by the AppendJSON
// encoders (already newline-terminated, matching json.Encoder output).
func (s *Server) writeRaw(w http.ResponseWriter, r *http.Request, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(body); err != nil {
		s.logEncodeError(r, err)
	}
}

// errorResponse is the v1 error envelope. Its shape is part of the
// byte-for-byte v1 compatibility contract and must not change.
type errorResponse struct {
	Error string `json:"error"`
}

// writeError emits a v1-style error.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, format string, args ...any) {
	s.writeJSON(w, r, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// v2 error codes. Stable machine-readable strings; the human text in
// Message may change freely.
const (
	codeInvalidRequest  = "invalid_request"
	codeNotFound        = "not_found"
	codeConflict        = "conflict"
	codeTooLarge        = "too_large"
	codeStoreFull       = "store_full"
	codeAlreadyTerminal = "already_terminal"
	codeUnavailable     = "unavailable"
	codeInternal        = "internal"
	// Admission-control codes. rate_limited/quota_exceeded/overloaded
	// mirror the admit package's Rejection codes; these two are the
	// service's own.
	codeUnknownAPIKey    = "unknown_api_key"
	codeDeadlineExceeded = "deadline_exceeded"
)

// apiErrorBody is the v2 error payload: a stable code, a human
// message, and the request id so one client-side line is enough to
// correlate with the server's access log.
type apiErrorBody struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
	// Tenant names the admission principal a 429 applies to; empty on
	// non-admission errors (omitempty keeps older envelopes identical).
	Tenant string `json:"tenant,omitempty"`
	// RetryAfterMs is the advisory retry interval for 429/503
	// rejections, duplicating the Retry-After header at millisecond
	// resolution for clients that want finer pacing.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}

// v2ErrorResponse is the uniform v2 error envelope.
type v2ErrorResponse struct {
	Error apiErrorBody `json:"error"`
}

// writeV2Error emits a v2 error envelope, stamping the request id from
// the request context.
func (s *Server) writeV2Error(w http.ResponseWriter, r *http.Request, status int, code, format string, args ...any) {
	s.writeJSON(w, r, status, v2ErrorResponse{Error: apiErrorBody{
		Code:      code,
		Message:   fmt.Sprintf(format, args...),
		RequestID: RequestIDFrom(r.Context()),
	}})
}

// requestProblem is a validation failure carried between the shared
// validation layer and the version-specific error writers: v1 renders
// it as {"error": msg}, v2 as the code/message envelope.
type requestProblem struct {
	status int
	code   string
	msg    string
}

func (p *requestProblem) writeV1(s *Server, w http.ResponseWriter, r *http.Request) {
	s.writeError(w, r, p.status, "%s", p.msg)
}

func (p *requestProblem) writeV2(s *Server, w http.ResponseWriter, r *http.Request) {
	s.writeV2Error(w, r, p.status, p.code, "%s", p.msg)
}
