package service

import (
	"bytes"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current server output")

// goldenCases are fixed /v1 request bodies whose exact response bytes
// are pinned in testdata/. They are the compatibility contract: the v1
// handlers may be re-plumbed freely (and were, onto the jobs core), but
// for these bodies the wire bytes must never change. Each case runs
// against a fresh server so cache state cannot leak between cases;
// bodies avoid duplicate specs so cache_hit flags are deterministic.
var goldenCases = []struct {
	name   string
	method string
	path   string
	body   string
	status int
}{
	{
		name:   "optimize_syncbus",
		method: http.MethodPost,
		path:   "/v1/optimize",
		body:   `{"n":512,"stencil":"5-point","shape":"square","machine":{"type":"sync-bus"}}`,
		status: http.StatusOK,
	},
	{
		name:   "optimize_snapped_banyan",
		method: http.MethodPost,
		path:   "/v1/optimize",
		body:   `{"n":256,"stencil":"9-point","shape":"square","machine":{"type":"banyan"},"snapped":true}`,
		status: http.StatusOK,
	},
	{
		name:   "optimize_bad_stencil",
		method: http.MethodPost,
		path:   "/v1/optimize",
		body:   `{"n":512,"stencil":"7-point","shape":"square","machine":{"type":"sync-bus"}}`,
		status: http.StatusBadRequest,
	},
	{
		name:   "optimize_bad_machine",
		method: http.MethodPost,
		path:   "/v1/optimize",
		body:   `{"n":512,"stencil":"5-point","shape":"square","machine":{"type":"quantum"}}`,
		status: http.StatusBadRequest,
	},
	{
		name:   "sweep_space_only",
		method: http.MethodPost,
		path:   "/v1/sweep",
		body: `{"space":{"ns":[64,128],"stencils":["5-point","9-point"],` +
			`"shapes":["strip","square"],"machines":[{"type":"sync-bus"},{"type":"hypercube"}]}}`,
		status: http.StatusOK,
	},
	{
		name:   "sweep_space_speedup_procs",
		method: http.MethodPost,
		path:   "/v1/sweep",
		body: `{"space":{"op":"speedup","ns":[128,256],"stencils":["5-point"],` +
			`"shapes":["square"],"machines":[{"type":"mesh"}],"procs":[4,16,64]}}`,
		status: http.StatusOK,
	},
	{
		name:   "sweep_explicit_with_error",
		method: http.MethodPost,
		path:   "/v1/sweep",
		body: `{"specs":[` +
			`{"op":"min-grid","n":16,"stencil":"5-point","shape":"strip","machine":{"type":"sync-bus"},"procs":8},` +
			`{"n":128,"stencil":"bogus","shape":"square","machine":{"type":"sync-bus"}},` +
			`{"op":"scaled","n":256,"stencil":"5-point","shape":"square","machine":{"type":"hypercube"},"points_per_proc":64}]}`,
		status: http.StatusOK,
	},
	{
		name:   "sweep_mixed_specs_and_space",
		method: http.MethodPost,
		path:   "/v1/sweep",
		body: `{"specs":[{"n":96,"stencil":"9-point","shape":"strip","machine":{"type":"async-bus"}}],` +
			`"space":{"ns":[192],"stencils":["5-point"],"shapes":["square"],"machines":[{"type":"banyan"}]}}`,
		status: http.StatusOK,
	},
	{
		name:   "sweep_empty",
		method: http.MethodPost,
		path:   "/v1/sweep",
		body:   `{}`,
		status: http.StatusBadRequest,
	},
	{
		name:   "architectures",
		method: http.MethodGet,
		path:   "/v1/architectures",
		status: http.StatusOK,
	},
}

func TestV1GoldenBytes(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			srv := New(Config{})
			defer srv.Close()
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			var body *strings.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			} else {
				body = strings.NewReader("")
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			if tc.body != "" {
				req.Header.Set("Content-Type", "application/json")
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d; body %s", resp.StatusCode, tc.status, buf.Bytes())
			}
			path := filepath.Join("testdata", tc.name+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("response bytes diverged from golden %s:\n got: %s\nwant: %s",
					path, buf.Bytes(), want)
			}
		})
	}
}
