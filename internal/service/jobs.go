package service

import (
	"errors"
	"net/http"
	"sort"
	"strconv"
	"time"

	"optspeed/internal/jobs"
	"optspeed/internal/telemetry"
)

// JobSubmitRequest is the body of POST /v2/jobs: exactly one of Sweep
// or Optimize carries the work. Kind is optional and, when present,
// must match the payload ("sweep" or "optimize").
type JobSubmitRequest struct {
	Kind     string           `json:"kind,omitempty"`
	Sweep    *SweepRequest    `json:"sweep,omitempty"`
	Optimize *OptimizeRequest `json:"optimize,omitempty"`
}

// ProgressJSON is the wire form of a job's live counters. Evaluated is
// derived: completed minus cache hits minus errors. The shard pair
// appears only for jobs the coordinator scattered across peers.
type ProgressJSON struct {
	Total      int `json:"total"`
	Completed  int `json:"completed"`
	Evaluated  int `json:"evaluated"`
	CacheHits  int `json:"cache_hits"`
	Errors     int `json:"errors"`
	Shards     int `json:"shards,omitempty"`
	ShardsDone int `json:"shards_done,omitempty"`
	// ShardsHedged counts shards that launched a hedged second attempt
	// (only ever non-zero on scattered jobs with hedging enabled).
	ShardsHedged int `json:"shards_hedged,omitempty"`
}

// JobJSON is the wire form of one job resource. Persisted and
// Recovered appear only on servers running with a durable store
// (omitempty keeps in-memory deployments byte-identical): Persisted
// means the job's transitions are being written to the WAL; Recovered
// marks a job restored from the durable store after a restart rather
// than submitted to this process.
type JobJSON struct {
	ID              string        `json:"id"`
	Kind            string        `json:"kind"`
	State           string        `json:"state"`
	CancelRequested bool          `json:"cancel_requested,omitempty"`
	CreatedAt       time.Time     `json:"created_at"`
	StartedAt       *time.Time    `json:"started_at,omitempty"`
	FinishedAt      *time.Time    `json:"finished_at,omitempty"`
	Progress        ProgressJSON  `json:"progress"`
	Reason          string        `json:"reason,omitempty"`
	Persisted       bool          `json:"persisted,omitempty"`
	Recovered       bool          `json:"recovered,omitempty"`
	Trace           *JobTraceJSON `json:"trace,omitempty"`
}

// JobTraceJSON summarizes the job's recorded trace on the job
// resource: enough to see the span count and the critical-path/wall
// relationship at a glance, with GET /v1/traces/{id} serving the full
// span list. Omitted entirely when tracing is off or the trace has
// been evicted.
type JobTraceJSON struct {
	ID             string  `json:"id"`
	Spans          int     `json:"spans"`
	WallMs         float64 `json:"wall_ms"`
	CriticalPathMs float64 `json:"critical_path_ms"`
	SerialMs       float64 `json:"serial_ms"`
}

// jobJSON renders one job resource, stamping the server's persistence
// mode onto it.
func (s *Server) jobJSON(snap jobs.Snapshot) JobJSON {
	j := baseJobJSON(snap)
	j.Persisted = s.store.Persistent()
	j.Trace = s.jobTrace(snap.TraceID)
	return j
}

func baseJobJSON(snap jobs.Snapshot) JobJSON {
	j := JobJSON{
		ID:              snap.ID,
		Kind:            string(snap.Kind),
		State:           string(snap.State),
		CancelRequested: snap.CancelRequested,
		CreatedAt:       snap.Created,
		Progress: ProgressJSON{
			Total:        snap.Progress.Total,
			Completed:    snap.Progress.Completed,
			Evaluated:    snap.Progress.Completed - snap.Progress.CacheHits - snap.Progress.Errors,
			CacheHits:    snap.Progress.CacheHits,
			Errors:       snap.Progress.Errors,
			Shards:       snap.Progress.Shards,
			ShardsDone:   snap.Progress.ShardsDone,
			ShardsHedged: snap.Progress.ShardsHedged,
		},
		Reason:    snap.Reason,
		Recovered: snap.Recovered,
	}
	if !snap.Started.IsZero() {
		t := snap.Started
		j.StartedAt = &t
	}
	if !snap.Finished.IsZero() {
		t := snap.Finished
		j.FinishedAt = &t
	}
	return j
}

// storeProblem maps job-store errors onto v2 wire errors.
func storeProblem(err error) *requestProblem {
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		return &requestProblem{status: http.StatusNotFound, code: codeNotFound, msg: "no such job"}
	case errors.Is(err, jobs.ErrBadCursor):
		return &requestProblem{status: http.StatusBadRequest, code: codeInvalidRequest, msg: err.Error()}
	case errors.Is(err, jobs.ErrTerminal):
		return &requestProblem{status: http.StatusConflict, code: codeAlreadyTerminal,
			msg: "job is already in a terminal state"}
	case errors.Is(err, jobs.ErrStoreFull):
		return &requestProblem{status: http.StatusTooManyRequests, code: codeStoreFull,
			msg: "job store is full; retry after resident jobs finish"}
	case errors.Is(err, jobs.ErrClosed):
		return &requestProblem{status: http.StatusServiceUnavailable, code: codeUnavailable,
			msg: "server is shutting down"}
	default:
		return &requestProblem{status: http.StatusInternalServerError, code: codeInternal, msg: "internal error"}
	}
}

// handleJobSubmit accepts a sweep or optimize job and returns 202 with
// the pending job resource immediately; evaluation proceeds detached
// from this request.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	tenant, ok := s.admitRequest(w, r)
	if !ok {
		return
	}
	var req JobSubmitRequest
	if prob := s.decodeBody(r, w, &req); prob != nil {
		prob.writeV2(s, w, r)
		return
	}
	var jreq jobs.Request
	switch {
	case req.Sweep != nil && req.Optimize != nil:
		s.writeV2Error(w, r, http.StatusBadRequest, codeInvalidRequest,
			"provide exactly one of sweep or optimize")
		return
	case req.Sweep != nil:
		if req.Kind != "" && req.Kind != string(jobs.KindSweep) {
			s.writeV2Error(w, r, http.StatusBadRequest, codeInvalidRequest,
				"kind %q does not match the sweep payload", req.Kind)
			return
		}
		var prob *requestProblem
		jreq, prob = s.sweepJobRequest(*req.Sweep)
		if prob != nil {
			prob.writeV2(s, w, r)
			return
		}
	case req.Optimize != nil:
		if req.Kind != "" && req.Kind != string(jobs.KindOptimize) {
			s.writeV2Error(w, r, http.StatusBadRequest, codeInvalidRequest,
				"kind %q does not match the optimize payload", req.Kind)
			return
		}
		jreq = optimizeJobRequest(*req.Optimize)
	default:
		s.writeV2Error(w, r, http.StatusBadRequest, codeInvalidRequest,
			"provide a sweep or optimize payload")
		return
	}
	// Reserve the tenant's job quota for the job's whole lifetime: the
	// release rides the request as OnDone, fired exactly once when the
	// job reaches a terminal state (or below, if submission fails).
	release, rej := tenant.AcquireJob(jreq.Size())
	if rej != nil {
		s.writeRejection(w, r, rej)
		return
	}
	jreq.OnDone = release
	// Tie the job's spans into this request's trace: the traced
	// middleware opened a span for the submission, so the job span
	// becomes its child and the 202 response already names the trace.
	jreq.RequestID = RequestIDFrom(r.Context())
	jreq.TraceID = telemetry.TraceIDFrom(r.Context())
	jreq.ParentSpanID = telemetry.SpanIDFrom(r.Context())
	snap, err := s.store.Submit(jreq)
	if err != nil {
		release()
		storeProblem(err).writeV2(s, w, r)
		return
	}
	w.Header().Set("Location", "/v2/jobs/"+snap.ID)
	s.writeJSON(w, r, http.StatusAccepted, s.jobJSON(snap))
}

// handleJobGet reports one job's status and live progress.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	snap, err := s.store.Get(r.PathValue("id"))
	if err != nil {
		storeProblem(err).writeV2(s, w, r)
		return
	}
	s.writeJSON(w, r, http.StatusOK, s.jobJSON(snap))
}

// JobListResponse is the body of GET /v2/jobs.
type JobListResponse struct {
	Jobs []JobJSON `json:"jobs"`
}

// handleJobList lists resident jobs, newest first.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	snaps := s.store.List()
	sort.Slice(snaps, func(i, k int) bool {
		if !snaps[i].Created.Equal(snaps[k].Created) {
			return snaps[i].Created.After(snaps[k].Created)
		}
		return snaps[i].ID < snaps[k].ID
	})
	resp := JobListResponse{Jobs: make([]JobJSON, len(snaps))}
	for i, snap := range snaps {
		resp.Jobs[i] = s.jobJSON(snap)
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

// JobResultsResponse is one cursor page of a job's results. Results are
// in completion order (each carries its submission index); NextCursor
// resumes where this page ended, and Done means the job is terminal and
// fully read — polling the same cursor again will never yield more.
type JobResultsResponse struct {
	JobID      string            `json:"job_id"`
	State      string            `json:"state"`
	Results    []SweepResultJSON `json:"results"`
	NextCursor string            `json:"next_cursor"`
	Done       bool              `json:"done"`
}

// handleJobResults serves cursor-paginated reads of a job's results,
// usable while the job is still running: a page may be short (or
// empty); Done tells the reader when to stop.
func (s *Server) handleJobResults(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	cursor := 0
	if raw := q.Get("cursor"); raw != "" {
		var err error
		cursor, err = strconv.Atoi(raw)
		if err != nil {
			s.writeV2Error(w, r, http.StatusBadRequest, codeInvalidRequest,
				"invalid cursor %q", raw)
			return
		}
	}
	limit := 0
	if raw := q.Get("limit"); raw != "" {
		var err error
		limit, err = strconv.Atoi(raw)
		if err != nil || limit < 0 {
			s.writeV2Error(w, r, http.StatusBadRequest, codeInvalidRequest,
				"invalid limit %q", raw)
			return
		}
	}
	page, err := s.store.Results(r.PathValue("id"), cursor, limit)
	if err != nil {
		storeProblem(err).writeV2(s, w, r)
		return
	}
	// The page is a zero-copy subslice of the job's slab storage; the
	// AppendJSON encoder serializes it straight into a pooled buffer, so
	// a results read allocates nothing per result end to end.
	buf := getBuf()
	*buf = appendJobResultsPage(*buf, r.PathValue("id"), string(page.State),
		page.Results, page.NextCursor, page.Done)
	s.writeRaw(w, r, http.StatusOK, *buf)
	putBuf(buf)
}

// handleJobCancel requests cancellation and returns the job resource,
// which may report running with cancel_requested while the engine
// drains. Cancelling a job that already reached a terminal state is a
// 409 conflict (code "already_terminal"): the outcome cannot change,
// and the caller learns it raced the job's completion.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	snap, err := s.store.Cancel(r.PathValue("id"))
	if err != nil {
		storeProblem(err).writeV2(s, w, r)
		return
	}
	s.writeJSON(w, r, http.StatusOK, s.jobJSON(snap))
}
