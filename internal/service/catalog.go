package service

import (
	"net/http"
	"time"

	"optspeed/internal/admit"
	"optspeed/internal/core"
	"optspeed/internal/stencil"
	"optspeed/internal/store"
	"optspeed/internal/sweep"
)

// ArchitecturesResponse is the machine/stencil/shape catalog.
type ArchitecturesResponse struct {
	Architectures []core.CatalogEntry `json:"architectures"`
	Stencils      []string            `json:"stencils"`
	Shapes        []string            `json:"shapes"`
}

func (s *Server) handleArchitectures(w http.ResponseWriter, r *http.Request) {
	resp := ArchitecturesResponse{
		Architectures: core.Catalog(),
		Shapes:        []string{"strip", "square"},
	}
	for _, st := range stencil.Builtins() {
		resp.Stencils = append(resp.Stencils, st.Name())
	}
	s.writeJSONPretty(w, r, http.StatusOK, resp)
}

// MetricsResponse reports per-endpoint latency and engine counters.
// Persistence appears only on servers running with a durable store.
// Admission is the overload-protection block: the gate's capacity,
// in-flight, and shed counters plus every tenant's admission stats.
type MetricsResponse struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
	Engine        sweep.Stats                 `json:"engine"`
	Admission     *admit.Stats                `json:"admission,omitempty"`
	Persistence   *store.Stats                `json:"persistence,omitempty"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	adm := s.admission.Stats()
	resp := MetricsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Endpoints:     s.metrics.snapshot(),
		Engine:        s.engine.Stats(),
		Admission:     &adm,
	}
	if s.persistence != nil {
		stats := s.persistence.Stats()
		resp.Persistence = &stats
	}
	s.writeJSONPretty(w, r, http.StatusOK, resp)
}
