package service

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzDecodeSweepRequest hammers the shared sweep validation layer —
// the same decode + sweepJobRequest pass every sweep-accepting surface
// (v1 /sweep, v2 job submission, v2 streaming) runs — with arbitrary
// request bodies. Invariants: no panics; anything admitted respects
// the expanded-size limit (including against overflowing axis
// products); and an admitted request always carries work.
func FuzzDecodeSweepRequest(f *testing.F) {
	seeds := []string{
		`{"specs":[{"n":64,"stencil":"5-point","shape":"strip","machine":{"type":"sync-bus"}}]}`,
		`{"space":{"ns":[64,128],"stencils":["5-point"],"shapes":["strip","square"],` +
			`"machines":[{"type":"sync-bus"},{"type":"mesh"}]}}`,
		`{"space":{"op":"speedup","ns":[256],"stencils":["9-point"],"shapes":["square"],` +
			`"machines":[{"type":"hypercube"}],"procs":[1,2,4,8]}}`,
		`{"specs":[],"space":null}`,
		`{}`,
		`{"space":{"ns":[],"stencils":["5-point"],"shapes":["strip"],"machines":[{"type":"sync-bus"}]}}`,
		`{"space":{"op":"isoeff-grid","ns":[0],"stencils":["bogus"],"shapes":["round"],` +
			`"machines":[{"type":""}],"procs":[-1],"target":1.5}}`,
		`{"space":{"ns":[1,1,1,1,1,1,1,1],"stencils":["5-point","5-point"],` +
			`"shapes":["strip","strip"],"machines":[{"type":"sync-bus"}],"procs":[1,2,3,4,5,6,7,8]}}`,
		`{"specs":[{"op":"scaled","n":-5,"stencil":"13-point","shape":"square",` +
			`"machine":{"type":"banyan","w":-1},"points_per_proc":1e308}]}`,
		`[1,2,3]`,
		`"specs"`,
		`{"unknown_field":true}`,
		`{"specs":[{"op":"amdahl","n":128,"stencil":"5-point","shape":"square",` +
			`"machine":{"type":"sync-bus"},"procs":16}]}`,
		`{"space":{"op":"gustafson","ns":[64,256],"stencils":["9-point"],"shapes":["strip"],` +
			`"machines":[{"type":"mesh"}],"procs":[1,4,16,64]}}`,
		`{"space":{"op":"critical-path","ns":[256],"stencils":["5-point"],"shapes":["square"],` +
			`"machines":[{"type":"banyan","procs":128}],"procs":[2,8,32]}}`,
		`{"specs":[{"op":"transmogrify","n":64,"stencil":"5-point","shape":"square",` +
			`"machine":{"type":"sync-bus"}}]}`,
		// The /v2/laws request shape is not a sweep body: its top-level
		// problem fields must bounce off DisallowUnknownFields here.
		`{"n":256,"stencil":"5-point","shape":"square","machine":{"type":"sync-bus"},"procs":[1,2,4]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	// A small server keeps adversarial spaces cheap: the limit check
	// runs before expansion, so a tiny cap exercises the rejection
	// paths without letting the fuzzer OOM on giant (but non-
	// overflowing) axis products.
	srv := New(Config{MaxSweepSpecs: 512})
	defer srv.Close()
	f.Fuzz(func(t *testing.T, data []byte) {
		var req SweepRequest
		r := httptest.NewRequest("POST", "/v1/sweep", bytes.NewReader(data))
		w := httptest.NewRecorder()
		if prob := srv.decodeBody(r, w, &req); prob != nil {
			if prob.status < 400 || prob.status > 499 {
				t.Fatalf("decode problem with non-4xx status %d", prob.status)
			}
			return
		}
		jreq, prob := srv.sweepJobRequest(req)
		if prob != nil {
			if prob.status < 400 || prob.status > 499 {
				t.Fatalf("validation problem with non-4xx status %d: %s", prob.status, prob.msg)
			}
			if prob.msg == "" {
				t.Fatal("validation problem without a message")
			}
			return
		}
		// Admitted: the request must carry work within the cap.
		switch {
		case jreq.Space != nil:
			if size := jreq.Space.Size(); size <= 0 || size > srv.maxSpecs {
				t.Fatalf("admitted space of size %d past cap %d", size, srv.maxSpecs)
			}
		case len(jreq.Specs) > 0:
			if len(jreq.Specs) > srv.maxSpecs {
				t.Fatalf("admitted %d specs past cap %d", len(jreq.Specs), srv.maxSpecs)
			}
		default:
			t.Fatalf("admitted an empty request: %q", data)
		}
	})
}

// TestFuzzSeedsAreWellFormed keeps the committed corpus honest: every
// seed that claims to be JSON must round-trip through the same decoder
// configuration the handler uses, so corpus rot shows up as a plain
// test failure rather than silent fuzz-coverage loss.
func TestFuzzSeedsAreWellFormed(t *testing.T) {
	valid := 0
	for _, s := range []string{
		`{"specs":[{"n":64,"stencil":"5-point","shape":"strip","machine":{"type":"sync-bus"}}]}`,
		`{"space":{"ns":[64,128],"stencils":["5-point"],"shapes":["strip","square"],` +
			`"machines":[{"type":"sync-bus"},{"type":"mesh"}]}}`,
	} {
		dec := json.NewDecoder(strings.NewReader(s))
		dec.DisallowUnknownFields()
		var req SweepRequest
		if err := dec.Decode(&req); err != nil {
			t.Errorf("seed no longer decodes: %q: %v", s, err)
			continue
		}
		valid++
	}
	if valid == 0 {
		t.Fatal("no valid seeds left")
	}
}
