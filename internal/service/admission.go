package service

import (
	"context"
	"errors"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"optspeed/internal/admit"
)

// deadlineHeader carries a propagated request deadline: either an
// RFC3339(Nano) absolute timestamp or a Go duration relative to
// arrival ("2s", "750ms"). The service derives the request context's
// deadline from it, job runners inherit it, and the dispatch layer
// forwards it to peers — so one budget governs the whole call tree.
const deadlineHeader = "X-Request-Deadline"

// apiKey extracts the caller's API key: "Authorization: Bearer <key>"
// preferred, X-API-Key accepted. Empty means the anonymous tier.
func apiKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		const prefix = "Bearer "
		if len(h) > len(prefix) && strings.EqualFold(h[:len(prefix)], prefix) {
			return strings.TrimSpace(h[len(prefix):])
		}
	}
	return r.Header.Get("X-API-Key")
}

// withTenant resolves the request's API key to a tenant and stashes it
// in the context. An unknown key is a hard 401 — it must not silently
// fall into the anonymous tier, or a typo'd key consumes someone
// else's quota.
func (s *Server) withTenant(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tn, err := s.admission.Resolve(apiKey(r))
		if err != nil {
			s.writeV2Error(w, r, http.StatusUnauthorized, codeUnknownAPIKey,
				"unknown API key")
			return
		}
		noteTenant(r.Context(), tn.Name())
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantCtxKey, tn)))
	})
}

// parseDeadline interprets the deadline header value.
func parseDeadline(raw string, now time.Time) (time.Time, bool) {
	if d, err := time.ParseDuration(raw); err == nil {
		if d <= 0 {
			return now, true // already expired on arrival
		}
		return now.Add(d), true
	}
	if t, err := time.Parse(time.RFC3339Nano, raw); err == nil {
		return t, true
	}
	return time.Time{}, false
}

// withDeadline derives the request context's deadline from the
// deadline header. A deadline already expired on arrival is answered
// 504 immediately — cheaper than evaluating work nobody will read —
// and the context is flagged so handlers can report an in-flight
// expiry as 504 deadline_exceeded rather than a silent client abort.
func (s *Server) withDeadline(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		raw := r.Header.Get(deadlineHeader)
		if raw == "" {
			next.ServeHTTP(w, r)
			return
		}
		deadline, ok := parseDeadline(raw, time.Now())
		if !ok {
			s.writeV2Error(w, r, http.StatusBadRequest, codeInvalidRequest,
				"invalid %s %q: want a Go duration or an RFC3339 timestamp", deadlineHeader, raw)
			return
		}
		if !deadline.After(time.Now()) {
			s.writeV2Error(w, r, http.StatusGatewayTimeout, codeDeadlineExceeded,
				"request deadline already expired on arrival")
			return
		}
		ctx := context.WithValue(r.Context(), deadlineCtxKey, true)
		ctx, cancel := context.WithDeadline(ctx, deadline)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// hadDeadline reports whether the request carried a deadline header —
// the discriminator between "client hung up" (499, nothing to say) and
// "the propagated budget ran out" (504, worth answering).
func hadDeadline(ctx context.Context) bool {
	had, _ := ctx.Value(deadlineCtxKey).(bool)
	return had
}

// tenantFrom returns the tenant the middleware resolved (anonymous for
// requests that bypassed it, e.g. direct handler tests).
func (s *Server) tenantFrom(ctx context.Context) *admit.Tenant {
	if tn, ok := ctx.Value(tenantCtxKey).(*admit.Tenant); ok {
		return tn
	}
	return s.admission.Anonymous()
}

// writeRejection renders an admission rejection: the typed v2 envelope
// plus a Retry-After header in whole seconds (rounded up, at least 1)
// so dumb clients can pace themselves off the header alone while
// richer ones read the millisecond field in the body.
func (s *Server) writeRejection(w http.ResponseWriter, r *http.Request, rej *admit.Rejection) {
	retryAfter := rej.RetryAfter
	if retryAfter <= 0 {
		retryAfter = admit.DefaultQuotaRetryAfter
	}
	secs := int64(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	// Access-log vocabulary: both tenant-level rejections (token bucket,
	// job quota) log as rate_limited; a gate shed logs as shed.
	switch rej.Code {
	case admit.CodeOverloaded:
		noteAdmission(r.Context(), "shed")
	default:
		noteAdmission(r.Context(), "rate_limited")
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	s.writeJSON(w, r, rej.Status, v2ErrorResponse{Error: apiErrorBody{
		Code:         rej.Code,
		Message:      rej.Message,
		RequestID:    RequestIDFrom(r.Context()),
		Tenant:       rej.Tenant,
		RetryAfterMs: retryAfter.Milliseconds(),
	}})
}

// admitRequest runs the per-tenant rate check for one evaluation
// request. A false return means the 429 was already written.
func (s *Server) admitRequest(w http.ResponseWriter, r *http.Request) (*admit.Tenant, bool) {
	tn := s.tenantFrom(r.Context())
	if rej := tn.AllowRequest(); rej != nil {
		s.writeRejection(w, r, rej)
		return nil, false
	}
	noteAdmission(r.Context(), "admitted")
	return tn, true
}

// admitEvaluation passes the server-wide gate ahead of a synchronous
// evaluation of the given cost (estimated spec count). A false return
// means the rejection was already written: 503 overloaded on a shed,
// 499/504 when the caller's context died while queued. On true the
// returned release must be called when evaluation finishes.
func (s *Server) admitEvaluation(w http.ResponseWriter, r *http.Request, cost int) (func(), bool) {
	release, err := s.admission.Gate().Acquire(r.Context(), cost)
	if err == nil {
		return release, true
	}
	var rej *admit.Rejection
	switch {
	case errors.As(err, &rej):
		s.writeRejection(w, r, rej)
	case hadDeadline(r.Context()) && errors.Is(err, context.DeadlineExceeded):
		s.writeV2Error(w, r, http.StatusGatewayTimeout, codeDeadlineExceeded,
			"request deadline expired while waiting for admission")
	default:
		// The client hung up while queued; nobody reads a body, but the
		// abort should be visible in metrics.
		w.WriteHeader(statusClientClosedRequest)
	}
	return nil, false
}

// writeSyncFailure reports a synchronous evaluation that ended with a
// dead context: an explicit 504 when the request carried a deadline
// budget that ran out, otherwise the recorded-not-sent 499.
func (s *Server) writeSyncFailure(w http.ResponseWriter, r *http.Request) {
	if hadDeadline(r.Context()) && errors.Is(r.Context().Err(), context.DeadlineExceeded) {
		s.writeV2Error(w, r, http.StatusGatewayTimeout, codeDeadlineExceeded,
			"request deadline exceeded during evaluation")
		return
	}
	w.WriteHeader(statusClientClosedRequest)
}
