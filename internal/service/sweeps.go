package service

import (
	"errors"
	"net/http"
	"time"

	"optspeed/internal/sweep"
)

// SweepRequest carries explicit specs, a Cartesian space, or both
// (the space is expanded and appended after the explicit specs). It is
// the shared sweep body of v1 /sweep, v2 job submission, and v2
// streaming.
type SweepRequest struct {
	Specs []sweep.Spec `json:"specs,omitempty"`
	Space *sweep.Space `json:"space,omitempty"`
}

// SweepResultJSON is the wire form of one evaluated spec. The payload
// fields mirror sweep.Result: allocation fields for the optimize ops,
// Grid for the grid searches, Value for scalar ops, and ProcsUsed (a
// real-valued processor count, plus CycleTime/Speedup) for scaled
// points, where the machine grows fractionally with the problem.
//
// On the hot paths (v1 /sweep bodies, results pages, NDJSON lines) the
// wire bytes are produced by the AppendJSON encoders in encode.go, not
// encoding/json; the struct tags here remain the contract the encoders
// are held to byte-for-byte by the encode_test.go identity tests.
type SweepResultJSON struct {
	Index     int        `json:"index"`
	Spec      sweep.Spec `json:"spec"`
	CacheHit  bool       `json:"cache_hit"`
	Procs     int        `json:"procs,omitempty"`
	ProcsUsed float64    `json:"procs_used,omitempty"`
	Area      float64    `json:"area,omitempty"`
	CycleTime float64    `json:"cycle_time,omitempty"`
	Speedup   float64    `json:"speedup,omitempty"`
	Grid      int        `json:"grid,omitempty"`
	Value     float64    `json:"value,omitempty"`
	Error     string     `json:"error,omitempty"`
}

// sweepResultJSON converts one engine result to its wire form. A
// recovered evaluation panic is reported without the panic text.
func sweepResultJSON(res sweep.Result) SweepResultJSON {
	jr := SweepResultJSON{
		Index:    res.Index,
		Spec:     res.Spec,
		CacheHit: res.CacheHit,
		Grid:     res.Grid,
		Value:    res.Value,
	}
	if res.Alloc.Procs > 0 {
		jr.Procs = res.Alloc.Procs
		jr.Area = res.Alloc.Area
		jr.CycleTime = res.Alloc.CycleTime
		jr.Speedup = res.Alloc.Speedup
	}
	if res.Spec.Op == sweep.OpScaled && res.Err == nil {
		jr.ProcsUsed = res.Scaled.Procs
		jr.CycleTime = res.Scaled.CycleTime
		jr.Speedup = res.Scaled.Speedup
	}
	if res.Err != nil {
		if errors.Is(res.Err, sweep.ErrEvaluationPanic) {
			jr.Error = "internal evaluation error"
		} else {
			jr.Error = res.Err.Error()
		}
	}
	return jr
}

// SweepStats summarizes one sweep's cache interaction.
type SweepStats struct {
	Specs     int `json:"specs"`
	CacheHits int `json:"cache_hits"`
	Evaluated int `json:"evaluated"`
	Errors    int `json:"errors"`
}

// observe counts one result.
func (st *SweepStats) observe(res *sweep.Result) {
	st.Specs++
	switch {
	case res.Err != nil:
		st.Errors++
	case res.CacheHit:
		st.CacheHits++
	default:
		st.Evaluated++
	}
}

// SweepResponse is the body of a completed v1 sweep. The hot path
// encodes this shape through appendSweepResponse; the struct remains
// for clients and the encoder-identity tests.
type SweepResponse struct {
	Results []SweepResultJSON `json:"results"`
	Stats   SweepStats        `json:"stats"`
}

// handleSweep is the v1 synchronous adapter: the batch runs through the
// same jobs core as v2 — bound to the request context, never retained —
// and the full response is serialized once into a pooled buffer by the
// AppendJSON encoder (byte-identical to the old encoding/json output,
// without its per-result reflection and allocation).
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.admitRequest(w, r); !ok {
		return
	}
	var req SweepRequest
	if prob := s.decodeBody(r, w, &req); prob != nil {
		prob.writeV1(s, w, r)
		return
	}
	jreq, prob := s.sweepJobRequest(req)
	if prob != nil {
		prob.writeV1(s, w, r)
		return
	}
	release, ok := s.admitEvaluation(w, r, jreq.Size())
	if !ok {
		return
	}
	defer release()
	results, err := s.store.RunSync(r.Context(), jreq)
	if err != nil {
		s.writeSyncFailure(w, r)
		return
	}
	var stats SweepStats
	for i := range results {
		stats.observe(&results[i])
	}
	buf := getBuf()
	*buf = appendSweepResponse(*buf, results, &stats)
	s.writeRaw(w, r, http.StatusOK, *buf)
	putBuf(buf)
}

// StreamLine is one NDJSON line of POST /v2/sweeps/stream: result lines
// carry Result; the final line carries Done plus the run's Stats. The
// wire bytes come from appendStreamResultLine/appendStreamDoneLine.
type StreamLine struct {
	Result *SweepResultJSON `json:"result,omitempty"`
	Done   bool             `json:"done,omitempty"`
	Stats  *SweepStats      `json:"stats,omitempty"`
}

// handleSweepStream streams results straight off the engine's chunk
// channel as NDJSON — one line per result, encoded into a pooled
// buffer, flushed once per chunk (per result when the engine is the
// bottleneck, batched under backpressure) — and hands each chunk
// buffer back to the engine's pool. The response clears the
// connection's write deadline for its own duration, exempting long
// streams from the daemon's blanket WriteTimeout.
//
// A client that wants throughput rather than per-result latency — the
// distributed shard coordinator — sends "X-Stream-Flush: batch": the
// per-chunk flush is skipped and net/http's own write buffering
// coalesces lines into full TCP frames, cutting a fast sweep's
// syscalls per result to syscalls per response buffer.
func (s *Server) handleSweepStream(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.admitRequest(w, r); !ok {
		return
	}
	var req SweepRequest
	if prob := s.decodeBody(r, w, &req); prob != nil {
		prob.writeV2(s, w, r)
		return
	}
	jreq, prob := s.sweepJobRequest(req)
	if prob != nil {
		prob.writeV2(s, w, r)
		return
	}
	// The gate slot is held for the stream's whole duration: rejection
	// happens here, before the 200 and the first byte, so an admitted
	// stream is never severed by admission control.
	release, ok := s.admitEvaluation(w, r, jreq.Size())
	if !ok {
		return
	}
	defer release()
	// The jobs core owns the request→engine dispatch (space fast path
	// vs flat specs); the stream endpoint just doesn't register a job.
	ch, _, err := s.store.Open(r.Context(), jreq)
	if err != nil {
		s.writeV2Error(w, r, http.StatusBadRequest, codeInvalidRequest, "%v", err)
		return
	}

	rc := http.NewResponseController(w)
	// A stream's lifetime is the sweep's, not the server's WriteTimeout;
	// the zero time clears the per-connection deadline for this response
	// only (ignored by writers that don't support deadlines, such as
	// httptest recorders).
	_ = rc.SetWriteDeadline(time.Time{})
	flushPerChunk := r.Header.Get("X-Stream-Flush") != "batch"
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	buf := getBuf()
	defer putBuf(buf)
	engine := s.store.Engine()
	var stats SweepStats
	for c := range ch {
		*buf = (*buf)[:0]
		for i := range c.Results {
			stats.observe(&c.Results[i])
			jr := sweepResultJSON(c.Results[i])
			*buf = appendStreamResultLine(*buf, &jr)
		}
		engine.Recycle(c)
		if _, err := w.Write(*buf); err != nil {
			return // client gone; the engine stream stops with the context
		}
		if flushPerChunk {
			_ = rc.Flush()
		}
	}
	if r.Context().Err() != nil {
		return
	}
	*buf = appendStreamDoneLine((*buf)[:0], &stats)
	if _, err := w.Write(*buf); err != nil {
		s.logEncodeError(r, err)
		return
	}
	_ = rc.Flush()
}
