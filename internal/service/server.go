// Package service exposes the sweep engine as an HTTP JSON API — the
// cmd/optspeedd server.
//
// The v1 surface is synchronous (one request, one full response):
//
//	POST /v1/optimize       one model query (optimal allocation)
//	POST /v1/sweep          batch evaluation of spec lists / spec spaces
//	GET  /v1/architectures  catalog of supported machines
//	GET  /v1/metrics        per-endpoint latency and engine cache stats
//	GET  /healthz           liveness probe
//
// The v2 surface makes evaluations first-class job resources, so a
// large sweep no longer holds one request open for its whole runtime:
//
//	POST   /v2/jobs               submit a sweep or optimize job (202)
//	GET    /v2/jobs               list resident jobs
//	GET    /v2/jobs/{id}          job status + live progress counters
//	GET    /v2/jobs/{id}/results  cursor-paginated result pages
//	DELETE /v2/jobs/{id}          cancel
//	POST   /v2/sweeps/stream      NDJSON results straight off the engine
//	POST   /v2/laws               scaling-law overlay (model vs Amdahl vs
//	                              Gustafson vs critical-path) for one
//	                              problem/machine pair
//
// All evaluation flows through a shared sweep.Engine, so repeated and
// concurrent identical requests coalesce in its memoization cache; the
// v1 handlers are thin synchronous adapters over the same jobs core
// that backs v2, and their wire output is pinned byte-for-byte by
// golden tests.
package service

import (
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"optspeed/internal/admit"
	"optspeed/internal/dispatch"
	"optspeed/internal/jobs"
	"optspeed/internal/store"
	"optspeed/internal/sweep"
	"optspeed/internal/telemetry"
)

// DefaultMaxSweepSpecs bounds one sweep request's expanded size. It
// equals the engine's default cache capacity by construction, so a
// maximum-size sweep stays fully resident and an identical repeat is
// answered from cache.
const DefaultMaxSweepSpecs = sweep.DefaultCacheSize

// DefaultMaxBodyBytes bounds one request body (8 MiB).
const DefaultMaxBodyBytes = 8 << 20

// statusClientClosedRequest is the nginx-convention status recorded (not
// sent — the client is gone) when a request dies with its context, so
// metrics distinguish aborted requests from successes and from errors.
const statusClientClosedRequest = 499

// Config configures a Server.
type Config struct {
	// Engine is the evaluation engine; nil builds a default one.
	Engine *sweep.Engine
	// Dispatcher routes sweeps across a worker cluster (coordinator
	// mode); nil builds a local-only dispatcher over Engine, making the
	// server a plain single node (and a valid worker for some other
	// coordinator).
	Dispatcher *dispatch.Dispatcher
	// MaxSweepSpecs caps the expanded spec count of one sweep request;
	// 0 means DefaultMaxSweepSpecs.
	MaxSweepSpecs int
	// MaxBodyBytes caps one request body; 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// JobCapacity bounds resident v2 jobs; 0 means jobs.DefaultCapacity.
	JobCapacity int
	// JobTTL is how long terminal v2 jobs stay readable; 0 means
	// jobs.DefaultTTL.
	JobTTL time.Duration
	// Persistence is the durable job store (from store.Open); nil keeps
	// the job store purely in-memory — the default, with the wire
	// surface byte-identical to pre-persistence builds.
	Persistence *store.Store
	// Recovered is the job state store.Open replayed, ingested into the
	// job store before the server accepts traffic.
	Recovered []jobs.PersistedJob
	// SnapshotInterval is the job store's snapshot/compaction period;
	// 0 means jobs.DefaultSnapshotInterval, negative disables.
	SnapshotInterval time.Duration
	// Logger receives the structured per-request access log; nil
	// disables access logging (request IDs are still assigned).
	Logger *slog.Logger
	// Admission is the overload-protection controller: API-key tenants
	// with rate limits and job quotas, plus the server-wide admission
	// gate. nil builds a default controller — an unlimited anonymous
	// tenant and a default-size gate — whose behavior is invisible to
	// unloaded traffic.
	Admission *admit.Controller
	// Metrics is the telemetry registry served at GET /metrics; nil
	// builds a fresh one. Every subsystem's counters are bridged into
	// it at construction.
	Metrics *telemetry.Registry
	// Tracer records request-scoped spans; nil builds a default-size
	// tracer. Evaluation requests mint (or adopt) a trace id, job
	// runners and dispatch shards nest spans under it, and GET
	// /v1/traces/{id} reads the result back.
	Tracer *telemetry.Tracer
	// DisableMetrics removes the GET /metrics route. The instrumented
	// middleware still observes into the registry (the cost is a few
	// atomic adds); only the exposition endpoint disappears.
	DisableMetrics bool
	// DisableTracing turns span recording off entirely: no trace ids
	// are minted, no headers propagate, and GET /v1/traces answers 404.
	DisableTracing bool
	// Collectors are extra metric sources bridged into the registry at
	// construction, after the built-in subsystems (the chaos plane
	// registers its injection counters this way).
	Collectors []func(*telemetry.Registry)
}

// Server is the HTTP facade over the sweep engine and the job store.
type Server struct {
	engine      *sweep.Engine
	dispatcher  *dispatch.Dispatcher
	store       *jobs.Store
	persistence *store.Store
	metrics     *metricsRegistry
	telemetry   *telemetry.Registry
	tracer      *telemetry.Tracer // nil when tracing is disabled
	admission   *admit.Controller
	mux         *http.ServeMux
	handler     http.Handler
	maxSpecs    int
	maxBody     int64
	logger      *slog.Logger
	started     time.Time
	serveProm   bool
}

// New builds a server, its job store, and its routing table. Call Close
// when done to stop the store's GC loop and cancel resident jobs.
func New(cfg Config) *Server {
	eng := cfg.Engine
	if eng == nil {
		eng = sweep.New(sweep.Options{})
	}
	maxSpecs := cfg.MaxSweepSpecs
	if maxSpecs <= 0 {
		maxSpecs = DefaultMaxSweepSpecs
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	disp := cfg.Dispatcher
	if disp == nil {
		disp = dispatch.New(dispatch.Options{Engine: eng})
	}
	var persister jobs.Persister
	if cfg.Persistence != nil {
		persister = cfg.Persistence
	}
	adm := cfg.Admission
	if adm == nil {
		adm = admit.New(admit.Config{})
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	tracer := cfg.Tracer
	if tracer == nil && !cfg.DisableTracing {
		tracer = telemetry.NewTracer(telemetry.TracerOptions{})
	}
	if cfg.DisableTracing {
		tracer = nil
	}
	s := &Server{
		engine:      eng,
		dispatcher:  disp,
		persistence: cfg.Persistence,
		store: jobs.NewStore(jobs.Options{
			Engine:           eng,
			Dispatcher:       disp,
			Capacity:         cfg.JobCapacity,
			TTL:              cfg.JobTTL,
			Persister:        persister,
			Recovered:        cfg.Recovered,
			SnapshotInterval: cfg.SnapshotInterval,
			Logger:           cfg.Logger,
			Gate:             adm.Gate(),
			Tracer:           tracer,
		}),
		metrics:   newMetricsRegistry(reg),
		telemetry: reg,
		tracer:    tracer,
		admission: adm,
		mux:       http.NewServeMux(),
		maxSpecs:  maxSpecs,
		maxBody:   maxBody,
		logger:    cfg.Logger,
		started:   time.Now(),
		serveProm: !cfg.DisableMetrics,
	}
	s.registerCollectors()
	for _, collect := range cfg.Collectors {
		collect(s.telemetry)
	}
	s.routes()
	// Middleware order (outermost first): request IDs are assigned
	// before the access log runs, so every log line carries one; the
	// tenant must be resolved before the deadline middleware can reject
	// under the caller's identity, and both before any handler runs.
	s.handler = s.withRequestID(s.withAccessLog(s.withTenant(s.withDeadline(s.mux))))
	return s
}

func (s *Server) routes() {
	handle := func(pattern, name string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, s.metrics.instrument(name, h))
	}
	// traced routes are the evaluation entry points: each request gets
	// a request-scoped span (minted or adopted from the caller's trace
	// headers). Read-only routes stay untraced.
	traced := func(pattern, name string, h http.HandlerFunc) {
		handle(pattern, name, s.traced(name, h))
	}
	// v1: synchronous adapters over the jobs core.
	traced("POST /v1/optimize", "optimize", s.handleOptimize)
	traced("POST /v1/sweep", "sweep", s.handleSweep)
	handle("GET /v1/architectures", "architectures", s.handleArchitectures)
	handle("GET /v1/metrics", "metrics", s.handleMetrics)
	handle("GET /v1/traces/{id}", "traces_get", s.handleTraceGet)
	// v2: jobs as resources.
	traced("POST /v2/jobs", "jobs_submit", s.handleJobSubmit)
	handle("GET /v2/jobs", "jobs_list", s.handleJobList)
	handle("GET /v2/jobs/{id}", "jobs_get", s.handleJobGet)
	handle("GET /v2/jobs/{id}/results", "jobs_results", s.handleJobResults)
	handle("DELETE /v2/jobs/{id}", "jobs_cancel", s.handleJobCancel)
	traced("POST /v2/sweeps/stream", "sweep_stream", s.handleSweepStream)
	traced("POST /v2/laws", "laws", s.handleLaws)
	handle("GET /v2/cluster", "cluster", s.handleCluster)
	handle("POST /v2/cluster/peers", "cluster_peer_add", s.handlePeerAdd)
	handle("DELETE /v2/cluster/peers", "cluster_peer_remove", s.handlePeerRemove)
	if s.serveProm {
		// Deliberately outside the instrumented table: see handlePrometheus.
		s.mux.HandleFunc("GET /metrics", s.handlePrometheus)
	}
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
}

// Handler returns the server's root handler (mux plus middleware).
func (s *Server) Handler() http.Handler { return s.handler }

// Engine returns the underlying engine (shared cache), for embedding the
// server next to library sweeps.
func (s *Server) Engine() *sweep.Engine { return s.engine }

// Jobs returns the server's job store.
func (s *Server) Jobs() *jobs.Store { return s.store }

// Admission returns the server's admission controller.
func (s *Server) Admission() *admit.Controller { return s.admission }

// Telemetry returns the server's metric registry.
func (s *Server) Telemetry() *telemetry.Registry { return s.telemetry }

// Tracer returns the server's span recorder, nil when tracing is
// disabled.
func (s *Server) Tracer() *telemetry.Tracer { return s.tracer }

// Close stops the job store: its GC loop ends and resident running
// jobs are cancelled and drained.
func (s *Server) Close() { s.store.Close() }
