// Package service exposes the sweep engine as an HTTP JSON API — the
// cmd/optspeedd server. Endpoints:
//
//	POST /v1/optimize       one model query (optimal allocation)
//	POST /v1/sweep          batch evaluation of spec lists / spec spaces
//	GET  /v1/architectures  catalog of supported machines
//	GET  /v1/metrics        per-endpoint latency and engine cache stats
//	GET  /healthz           liveness probe
//
// All evaluation flows through a shared sweep.Engine, so repeated and
// concurrent identical requests coalesce in its memoization cache.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"optspeed/internal/core"
	"optspeed/internal/stencil"
	"optspeed/internal/sweep"
)

// DefaultMaxSweepSpecs bounds one /v1/sweep request's expanded size. It
// equals the engine's default cache capacity by construction, so a
// maximum-size sweep stays fully resident and an identical repeat is
// answered from cache.
const DefaultMaxSweepSpecs = sweep.DefaultCacheSize

// DefaultMaxBodyBytes bounds one request body (8 MiB).
const DefaultMaxBodyBytes = 8 << 20

// statusClientClosedRequest is the nginx-convention status recorded (not
// sent — the client is gone) when a request dies with its context, so
// metrics distinguish aborted requests from successes and from errors.
const statusClientClosedRequest = 499

// Config configures a Server.
type Config struct {
	// Engine is the evaluation engine; nil builds a default one.
	Engine *sweep.Engine
	// MaxSweepSpecs caps the expanded spec count of one sweep request;
	// 0 means DefaultMaxSweepSpecs.
	MaxSweepSpecs int
	// MaxBodyBytes caps one request body; 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
}

// Server is the HTTP facade over the sweep engine.
type Server struct {
	engine   *sweep.Engine
	metrics  *metricsRegistry
	mux      *http.ServeMux
	maxSpecs int
	maxBody  int64
	started  time.Time
}

// New builds a server and its routing table.
func New(cfg Config) *Server {
	eng := cfg.Engine
	if eng == nil {
		eng = sweep.New(sweep.Options{})
	}
	maxSpecs := cfg.MaxSweepSpecs
	if maxSpecs <= 0 {
		maxSpecs = DefaultMaxSweepSpecs
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	s := &Server{
		engine:   eng,
		metrics:  newMetricsRegistry(),
		mux:      http.NewServeMux(),
		maxSpecs: maxSpecs,
		maxBody:  maxBody,
		started:  time.Now(),
	}
	s.mux.HandleFunc("POST /v1/optimize", s.metrics.instrument("optimize", s.handleOptimize))
	s.mux.HandleFunc("POST /v1/sweep", s.metrics.instrument("sweep", s.handleSweep))
	s.mux.HandleFunc("GET /v1/architectures", s.metrics.instrument("architectures", s.handleArchitectures))
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return s
}

// Handler returns the server's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Engine returns the underlying engine (shared cache), for embedding the
// server next to library sweeps.
func (s *Server) Engine() *sweep.Engine { return s.engine }

// writeJSON emits compact JSON: sweep responses at the request limit run
// to tens of MB, where indentation is pure wire overhead.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeJSONPretty indents the small human-facing catalog and metrics
// payloads.
func writeJSONPretty(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", s.maxBody)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// --- /v1/optimize ---

// OptimizeRequest is one model query. Machine fields left zero take the
// calibrated defaults; Snapped selects working-rectangle snapping.
type OptimizeRequest struct {
	N       int              `json:"n"`
	Stencil string           `json:"stencil"`
	Shape   string           `json:"shape"`
	Machine core.MachineSpec `json:"machine"`
	Snapped bool             `json:"snapped,omitempty"`
}

// OptimizeResponse reports the optimal allocation.
type OptimizeResponse struct {
	N         int     `json:"n"`
	Stencil   string  `json:"stencil"`
	Shape     string  `json:"shape"`
	Arch      string  `json:"arch"`
	Procs     int     `json:"procs"`
	Area      float64 `json:"area"`
	CycleTime float64 `json:"cycle_time"`
	Speedup   float64 `json:"speedup"`
	UsedAll   bool    `json:"used_all"`
	Single    bool    `json:"single"`
	Interior  bool    `json:"interior"`
	CacheHit  bool    `json:"cache_hit"`
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req OptimizeRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	op := sweep.OpOptimize
	if req.Snapped {
		op = sweep.OpOptimizeSnapped
	}
	spec := sweep.Spec{Op: op, N: req.N, Stencil: req.Stencil, Shape: req.Shape, Machine: req.Machine}
	res, err := s.engine.Evaluate(r.Context(), spec)
	if err != nil {
		// A dead request context surfaces either as its own error or as
		// ErrWaitCancelled from a coalesced in-flight wait; nobody reads
		// the response, but metrics should see the abort, not a 200.
		if errors.Is(err, sweep.ErrWaitCancelled) ||
			(r.Context().Err() != nil && errors.Is(err, r.Context().Err())) {
			w.WriteHeader(statusClientClosedRequest)
			return
		}
		// A recovered panic is a server defect: 500, without the panic
		// text. Everything else is a bad spec.
		if errors.Is(err, sweep.ErrEvaluationPanic) {
			writeError(w, http.StatusInternalServerError, "internal evaluation error")
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, OptimizeResponse{
		N:         req.N,
		Stencil:   req.Stencil,
		Shape:     req.Shape,
		Arch:      res.Alloc.Arch,
		Procs:     res.Alloc.Procs,
		Area:      res.Alloc.Area,
		CycleTime: res.Alloc.CycleTime,
		Speedup:   res.Alloc.Speedup,
		UsedAll:   res.Alloc.UsedAll,
		Single:    res.Alloc.Single,
		Interior:  res.Alloc.Interior,
		CacheHit:  res.CacheHit,
	})
}

// --- /v1/sweep ---

// SweepRequest carries explicit specs, a Cartesian space, or both
// (the space is expanded and appended after the explicit specs).
type SweepRequest struct {
	Specs []sweep.Spec `json:"specs,omitempty"`
	Space *sweep.Space `json:"space,omitempty"`
}

// SweepResultJSON is the wire form of one evaluated spec. The payload
// fields mirror sweep.Result: allocation fields for the optimize ops,
// Grid for the grid searches, Value for scalar ops, and ProcsUsed (a
// real-valued processor count, plus CycleTime/Speedup) for scaled
// points, where the machine grows fractionally with the problem.
type SweepResultJSON struct {
	Index     int        `json:"index"`
	Spec      sweep.Spec `json:"spec"`
	CacheHit  bool       `json:"cache_hit"`
	Procs     int        `json:"procs,omitempty"`
	ProcsUsed float64    `json:"procs_used,omitempty"`
	Area      float64    `json:"area,omitempty"`
	CycleTime float64    `json:"cycle_time,omitempty"`
	Speedup   float64    `json:"speedup,omitempty"`
	Grid      int        `json:"grid,omitempty"`
	Value     float64    `json:"value,omitempty"`
	Error     string     `json:"error,omitempty"`
}

// SweepStats summarizes one sweep request's cache interaction.
type SweepStats struct {
	Specs     int `json:"specs"`
	CacheHits int `json:"cache_hits"`
	Evaluated int `json:"evaluated"`
	Errors    int `json:"errors"`
}

// SweepResponse is the body of a completed sweep.
type SweepResponse struct {
	Results []SweepResultJSON `json:"results"`
	Stats   SweepStats        `json:"stats"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	specs := req.Specs
	spaceOnly := false
	if req.Space != nil {
		// Size() saturates at math.MaxInt on overflowing axis products,
		// and the two-step comparison avoids overflowing the sum, so a
		// crafted space cannot slip past the limit into Expand.
		size := req.Space.Size()
		if size > s.maxSpecs || len(specs) > s.maxSpecs-size {
			writeError(w, http.StatusRequestEntityTooLarge,
				"sweep of %d+%d specs exceeds the limit of %d", len(specs), size, s.maxSpecs)
			return
		}
		spaceOnly = len(specs) == 0 && size > 0
		if !spaceOnly {
			specs = append(specs, req.Space.Expand()...)
		}
	}
	if len(specs) == 0 && !spaceOnly {
		writeError(w, http.StatusBadRequest, "empty sweep: provide specs or a space")
		return
	}
	if len(specs) > s.maxSpecs {
		writeError(w, http.StatusRequestEntityTooLarge,
			"sweep of %d specs exceeds the limit of %d", len(specs), s.maxSpecs)
		return
	}
	var results []sweep.Result
	var err error
	if spaceOnly {
		// A pure space request keeps its Cartesian structure, so the
		// engine can pre-resolve each axis value once and batch the
		// speedup-over-procs fast path (RunSpace); mixed requests fall
		// back to the flat spec list.
		results, err = s.engine.RunSpace(r.Context(), *req.Space)
	} else {
		results, err = s.engine.Run(r.Context(), specs)
	}
	if err != nil {
		// Cancelled by the client; nobody reads the response, but the
		// abort should be visible in metrics.
		w.WriteHeader(statusClientClosedRequest)
		return
	}
	resp := SweepResponse{Results: make([]SweepResultJSON, len(results))}
	resp.Stats.Specs = len(results)
	for i, res := range results {
		jr := SweepResultJSON{
			Index:    res.Index,
			Spec:     res.Spec,
			CacheHit: res.CacheHit,
			Grid:     res.Grid,
			Value:    res.Value,
		}
		if res.Alloc.Procs > 0 {
			jr.Procs = res.Alloc.Procs
			jr.Area = res.Alloc.Area
			jr.CycleTime = res.Alloc.CycleTime
			jr.Speedup = res.Alloc.Speedup
		}
		if res.Spec.Op == sweep.OpScaled && res.Err == nil {
			jr.ProcsUsed = res.Scaled.Procs
			jr.CycleTime = res.Scaled.CycleTime
			jr.Speedup = res.Scaled.Speedup
		}
		if res.Err != nil {
			if errors.Is(res.Err, sweep.ErrEvaluationPanic) {
				jr.Error = "internal evaluation error"
			} else {
				jr.Error = res.Err.Error()
			}
			resp.Stats.Errors++
		} else if res.CacheHit {
			resp.Stats.CacheHits++
		} else {
			resp.Stats.Evaluated++
		}
		resp.Results[i] = jr
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- /v1/architectures ---

// ArchitecturesResponse is the machine/stencil/shape catalog.
type ArchitecturesResponse struct {
	Architectures []core.CatalogEntry `json:"architectures"`
	Stencils      []string            `json:"stencils"`
	Shapes        []string            `json:"shapes"`
}

func (s *Server) handleArchitectures(w http.ResponseWriter, _ *http.Request) {
	resp := ArchitecturesResponse{
		Architectures: core.Catalog(),
		Shapes:        []string{"strip", "square"},
	}
	for _, st := range stencil.Builtins() {
		resp.Stencils = append(resp.Stencils, st.Name())
	}
	writeJSONPretty(w, http.StatusOK, resp)
}

// --- /v1/metrics ---

// MetricsResponse reports per-endpoint latency and engine counters.
type MetricsResponse struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
	Engine        sweep.Stats                 `json:"engine"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSONPretty(w, http.StatusOK, MetricsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Endpoints:     s.metrics.snapshot(),
		Engine:        s.engine.Stats(),
	})
}
