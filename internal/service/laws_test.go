package service

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

// fig7LawsBody is the paper's Figure-7 configuration — the 256×256
// 5-point square problem on the default synchronous bus — with the
// default powers-of-two axis.
const fig7LawsBody = `{"n":256,"stencil":"5-point","shape":"square","machine":{"type":"sync-bus"}}`

func TestLawsOverlay(t *testing.T) {
	_, ts := newTestServerWith(t, Config{})
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v2/laws", fig7LawsBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var lr LawsResponse
	if err := json.Unmarshal(raw, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.N != 256 || lr.Stencil != "5-point" || lr.Shape != "square" {
		t.Fatalf("echoed problem %d/%s/%s", lr.N, lr.Stencil, lr.Shape)
	}
	if lr.SerialFraction < 0 || lr.SerialFraction > 1 {
		t.Fatalf("serial fraction %g outside [0,1]", lr.SerialFraction)
	}
	if lr.OptimalProcs < 1 || lr.OptimalSpeedup < 1 {
		t.Fatalf("optimal allocation P*=%d S*=%g", lr.OptimalProcs, lr.OptimalSpeedup)
	}
	if len(lr.Points) == 0 {
		t.Fatal("no overlay points")
	}
	// Default axis: powers of two from 1, strictly increasing, within the
	// 256×256 problem's decomposition bound.
	for i, pt := range lr.Points {
		if pt.Procs != 1<<i {
			t.Fatalf("point %d at procs %d, want %d", i, pt.Procs, 1<<i)
		}
		if pt.Procs > 256*256 {
			t.Fatalf("point %d beyond the decomposition bound", i)
		}
	}
	// Cross-law invariants on the served overlay, mirroring the core
	// property suite: S(1)=1, S ≤ P for Amdahl and the model,
	// Gustafson ≥ Amdahl, and critical-path dominates the model.
	const tol = 1e-9
	first := lr.Points[0]
	for _, v := range []float64{first.Model, first.Amdahl, first.Gustafson, first.CriticalPath} {
		if math.Abs(v-1) > tol {
			t.Fatalf("P=1 overlay not 1: %+v", first)
		}
	}
	for _, pt := range lr.Points {
		q := float64(pt.Procs)
		if pt.Amdahl > q*(1+tol) || pt.Model > q*(1+tol) {
			t.Fatalf("P=%d: speedup exceeds P: %+v", pt.Procs, pt)
		}
		if pt.Gustafson < pt.Amdahl-tol {
			t.Fatalf("P=%d: Gustafson %g below Amdahl %g", pt.Procs, pt.Gustafson, pt.Amdahl)
		}
		if pt.CriticalPath < pt.Model*(1-1e-9) {
			t.Fatalf("P=%d: critical-path %g below model %g", pt.Procs, pt.CriticalPath, pt.Model)
		}
		if want := math.Min(q, lr.CriticalPathRatio); math.Abs(pt.CriticalPath-want) > tol*want {
			t.Fatalf("P=%d: critical-path %g, want min(P, pi)=%g", pt.Procs, pt.CriticalPath, want)
		}
	}
	if lr.Stats.Specs != 1+4*len(lr.Points) {
		t.Fatalf("stats count %d, want %d", lr.Stats.Specs, 1+4*len(lr.Points))
	}
	// Divergence markers are sane: known kinds, on-axis procs.
	onAxis := map[int]bool{}
	for _, pt := range lr.Points {
		onAxis[pt.Procs] = true
	}
	kinds := map[string]bool{}
	for _, d := range lr.Divergences {
		switch d.Kind {
		case "model_vs_amdahl", "gustafson_vs_amdahl", "critical_path_saturates", "past_optimal":
		default:
			t.Fatalf("unknown divergence kind %q", d.Kind)
		}
		if kinds[d.Kind] {
			t.Fatalf("divergence kind %q reported twice", d.Kind)
		}
		kinds[d.Kind] = true
		if !onAxis[d.Procs] {
			t.Fatalf("divergence %q at off-axis P=%d", d.Kind, d.Procs)
		}
	}
	// The sync bus saturates far below 64k processors, so this overlay
	// must flag both the scaled/fixed split and the past-optimal regime.
	if !kinds["gustafson_vs_amdahl"] || !kinds["past_optimal"] {
		t.Fatalf("expected divergences missing: %+v", lr.Divergences)
	}
}

func TestLawsExplicitAxis(t *testing.T) {
	_, ts := newTestServerWith(t, Config{})
	body := `{"n":128,"stencil":"9-point","shape":"strip","machine":{"type":"hypercube"},"procs":[1,3,16,128]}`
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v2/laws", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var lr LawsResponse
	if err := json.Unmarshal(raw, &lr); err != nil {
		t.Fatal(err)
	}
	if len(lr.Points) != 4 {
		t.Fatalf("%d points, want 4", len(lr.Points))
	}
	for i, want := range []int{1, 3, 16, 128} {
		if lr.Points[i].Procs != want {
			t.Fatalf("point %d at P=%d, want %d", i, lr.Points[i].Procs, want)
		}
	}
}

func TestLawsRequestValidation(t *testing.T) {
	srv, ts := newTestServerWith(t, Config{})
	cases := []struct {
		name, body, wantIn string
	}{
		{"bad stencil", `{"n":64,"stencil":"7-point","shape":"square","machine":{"type":"sync-bus"}}`, "stencil"},
		{"bad shape", `{"n":64,"stencil":"5-point","shape":"blob","machine":{"type":"sync-bus"}}`, "shape"},
		{"bad machine", `{"n":64,"stencil":"5-point","shape":"square","machine":{"type":"quantum"}}`, "quantum"},
		{"zero n", `{"n":0,"stencil":"5-point","shape":"square","machine":{"type":"sync-bus"}}`, "n"},
		{"procs below range", `{"n":64,"stencil":"5-point","shape":"square","machine":{"type":"sync-bus"},"procs":[0,4]}`, "out of range"},
		{"procs beyond bound", `{"n":8,"stencil":"5-point","shape":"square","machine":{"type":"sync-bus"},"procs":[1,65]}`, "out of range"},
		{"non-increasing axis", `{"n":64,"stencil":"5-point","shape":"square","machine":{"type":"sync-bus"},"procs":[4,4]}`, "strictly increasing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v2/laws", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, raw)
			}
			var env struct {
				Error struct {
					Code string `json:"code"`
				} `json:"error"`
			}
			if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code != codeInvalidRequest {
				t.Fatalf("envelope %s (err %v)", raw, err)
			}
			if !bytes.Contains(raw, []byte(tc.wantIn)) {
				t.Fatalf("message does not mention %q: %s", tc.wantIn, raw)
			}
		})
	}
	// Validation failures never touched the evaluation gate.
	if st := srv.Admission().Gate().Stats(); st.Admitted != 0 {
		t.Fatalf("invalid laws requests consumed %d admission slots", st.Admitted)
	}
}

// TestLawsGoldenBytes pins the exact wire bytes of the Figure-7 overlay
// — the /v2/laws compatibility contract, refreshed with -update like
// the v1 goldens.
func TestLawsGoldenBytes(t *testing.T) {
	_, ts := newTestServerWith(t, Config{})
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v2/laws", fig7LawsBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	path := filepath.Join("testdata", "laws_fig7.golden")
	if *updateGolden {
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(raw, want) {
		t.Fatalf("laws overlay bytes diverged from golden %s:\n got: %s\nwant: %s", path, raw, want)
	}
}
