package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// badOpCases are the request bodies carrying an unknown op, in both the
// flat-spec and space forms every sweep route accepts.
func badOpCases() []struct{ name, sweep string } {
	return []struct{ name, sweep string }{
		{"spec", `{"specs":[{"op":"transmogrify","n":64,"stencil":"5-point","shape":"square",` +
			`"machine":{"type":"sync-bus"}}]}`},
		{"space", `{"space":{"op":"transmogrify","ns":[64],"stencils":["5-point"],` +
			`"shapes":["square"],"machines":[{"type":"sync-bus"}]}}`},
	}
}

// TestUnknownOpRejectedBeforeAdmission is the regression test for the
// unknown-op hole: a bad op must 400 at validation on every sweep route
// — /v1/sweep, /v2/sweeps/stream, and /v2/jobs — without consuming an
// admission-gate slot and without minting a job. Before the fix the
// spec sailed through validation, burned a slot, and surfaced as a
// per-result "unknown op" error (or a registered failed job).
func TestUnknownOpRejectedBeforeAdmission(t *testing.T) {
	for _, tc := range badOpCases() {
		t.Run(tc.name, func(t *testing.T) {
			srv, ts := newTestServerWith(t, Config{})
			routes := []struct {
				name, url, body string
				v2              bool
			}{
				{"v1 sweep", ts.URL + "/v1/sweep", tc.sweep, false},
				{"v2 stream", ts.URL + "/v2/sweeps/stream", tc.sweep, true},
				{"v2 jobs", ts.URL + "/v2/jobs", fmt.Sprintf(`{"kind":"sweep","sweep":%s}`, tc.sweep), true},
			}
			for _, rt := range routes {
				resp, raw := doJSON(t, http.MethodPost, rt.url, rt.body)
				if resp.StatusCode != http.StatusBadRequest {
					t.Fatalf("%s: status %d, want 400: %s", rt.name, resp.StatusCode, raw)
				}
				if !strings.Contains(string(raw), "transmogrify") {
					t.Fatalf("%s: error does not name the op: %s", rt.name, raw)
				}
				if rt.v2 {
					var env struct {
						Error struct {
							Code string `json:"code"`
						} `json:"error"`
					}
					if err := json.Unmarshal(raw, &env); err != nil {
						t.Fatalf("%s: bad envelope %s: %v", rt.name, raw, err)
					}
					if env.Error.Code != codeInvalidRequest {
						t.Fatalf("%s: code %q, want %q", rt.name, env.Error.Code, codeInvalidRequest)
					}
				}
			}
			if st := srv.Admission().Gate().Stats(); st.Admitted != 0 {
				t.Fatalf("bad-op requests consumed %d admission slots, want 0", st.Admitted)
			}
			if jobs := srv.Jobs().List(); len(jobs) != 0 {
				t.Fatalf("bad-op submit minted %d jobs, want 0", len(jobs))
			}
			// Control: the same shape with a known op is admitted — the
			// zero counters above reflect rejection, not a dead gate.
			good := `{"specs":[{"op":"speedup","n":64,"stencil":"5-point","shape":"square",` +
				`"procs":4,"machine":{"type":"sync-bus"}}]}`
			if tc.name == "space" {
				good = `{"space":{"op":"speedup","ns":[64],"stencils":["5-point"],` +
					`"shapes":["square"],"procs":[4],"machines":[{"type":"sync-bus"}]}}`
			}
			resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/sweep", good)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("control sweep: status %d: %s", resp.StatusCode, raw)
			}
			if st := srv.Admission().Gate().Stats(); st.Admitted == 0 {
				t.Fatal("control sweep did not consume an admission slot")
			}
		})
	}
}

// TestUnknownOpMessageListsKnownOps pins the 400's guidance: it names
// the offending op and every op the service understands.
func TestUnknownOpMessageListsKnownOps(t *testing.T) {
	ts := newTestServer(t)
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/sweep", badOpCases()[0].sweep)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	for _, op := range []string{"optimize", "speedup", "amdahl", "gustafson", "critical-path"} {
		if !strings.Contains(string(raw), op) {
			t.Errorf("error message does not mention known op %q: %s", op, raw)
		}
	}
}
