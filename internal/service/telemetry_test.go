package service

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"optspeed/internal/dispatch"
	"optspeed/internal/sweep"
	"optspeed/internal/telemetry"
)

// TestV1MetricsEndpointsGolden pins the /v1/metrics endpoint map bytes
// after the telemetry migration: a fixed observation sequence must
// marshal exactly as the pre-telemetry accumulator did.
func TestV1MetricsEndpointsGolden(t *testing.T) {
	m := newMetricsRegistry(telemetry.NewRegistry())
	m.observe("optimize", 200, 1500*time.Microsecond)
	m.observe("optimize", 200, 2500*time.Microsecond)
	m.observe("optimize", 400, 980*time.Microsecond)
	m.observe("sweep", 200, 12*time.Millisecond)
	m.observe("sweep", statusClientClosedRequest, 3*time.Millisecond)
	m.observe("jobs_submit", 202, 410*time.Microsecond)

	got, err := json.MarshalIndent(m.snapshot(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "v1_metrics_endpoints.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("endpoint snapshot diverged from golden\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// legacyEndpoint is the pre-telemetry accumulator, kept verbatim as the
// equivalence oracle for the migrated adapter.
type legacyEndpoint struct {
	count     uint64
	errors    uint64
	cancelled uint64
	total     time.Duration
	max       time.Duration
}

func (ep *legacyEndpoint) observe(status int, d time.Duration) {
	ep.count++
	switch {
	case status == statusClientClosedRequest:
		ep.cancelled++
	case status >= 400:
		ep.errors++
	}
	ep.total += d
	if d > ep.max {
		ep.max = d
	}
}

func (ep *legacyEndpoint) snapshot() EndpointSnapshot {
	s := EndpointSnapshot{
		Count:     ep.count,
		Errors:    ep.errors,
		Cancelled: ep.cancelled,
		MaxMillis: float64(ep.max) / float64(time.Millisecond),
	}
	if ep.count > 0 {
		s.AvgMillis = float64(ep.total) / float64(ep.count) / float64(time.Millisecond)
	}
	return s
}

// TestV1MetricsLegacyOracle drives the migrated adapter and the
// pre-telemetry accumulator with an identical pseudo-random observation
// stream and requires bit-identical snapshots — including the exact
// float division order for avg_ms.
func TestV1MetricsLegacyOracle(t *testing.T) {
	m := newMetricsRegistry(telemetry.NewRegistry())
	legacy := map[string]*legacyEndpoint{}
	names := []string{"optimize", "sweep", "jobs_get", "sweep_stream"}
	statuses := []int{200, 200, 200, 202, 400, 404, 499, 503}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		name := names[rng.Intn(len(names))]
		status := statuses[rng.Intn(len(statuses))]
		d := time.Duration(rng.Int63n(int64(40 * time.Millisecond)))
		m.observe(name, status, d)
		ep := legacy[name]
		if ep == nil {
			ep = &legacyEndpoint{}
			legacy[name] = ep
		}
		ep.observe(status, d)
	}
	got := m.snapshot()
	if len(got) != len(legacy) {
		t.Fatalf("endpoint count %d, want %d", len(got), len(legacy))
	}
	for name, ep := range legacy {
		want := ep.snapshot()
		g, ok := got[name]
		if !ok {
			t.Fatalf("endpoint %q missing from migrated snapshot", name)
		}
		if g != want {
			t.Fatalf("endpoint %q diverged:\n got %+v\nwant %+v", name, g, want)
		}
	}
}

// TestPrometheusEndpoint boots a full server, drives a little traffic,
// and checks GET /metrics serves valid exposition covering every
// subsystem the issue names.
func TestPrometheusEndpoint(t *testing.T) {
	_, ts := newTestServerWith(t, Config{})
	doJSON(t, http.MethodPost, ts.URL+"/v1/optimize",
		`{"n":64,"stencil":"5-point","shape":"square","machine":{"type":"sync-bus"}}`)
	resp, raw := doJSON(t, http.MethodGet, ts.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if err := telemetry.CheckExposition(raw); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, raw)
	}
	for _, family := range []string{
		"optspeed_http_requests_total",
		"optspeed_http_request_duration_seconds_bucket",
		"optspeed_engine_evaluations_total",
		"optspeed_engine_cache_hits_total",
		"optspeed_admission_gate_capacity",
		"optspeed_tenant_admitted_total",
		"optspeed_jobs_submitted_total",
		"optspeed_jobs_finished_total",
		"optspeed_dispatch_shards_planned_total",
		"optspeed_trace_spans_recorded_total",
		"optspeed_uptime_seconds",
	} {
		if !strings.Contains(string(raw), family) {
			t.Fatalf("exposition missing %s:\n%s", family, raw)
		}
	}
}

// TestPrometheusDisabled: -metrics=false removes the route entirely.
func TestPrometheusDisabled(t *testing.T) {
	_, ts := newTestServerWith(t, Config{DisableMetrics: true})
	resp, _ := doJSON(t, http.MethodGet, ts.URL+"/metrics", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /metrics with metrics disabled: status %d, want 404", resp.StatusCode)
	}
}

// TestTraceDistributedSweep is the end-to-end trace check: a
// coordinator scatters one job across two worker daemons, and the
// recorded trace must contain the job span, one span per shard, and
// summary timings consistent with the job's measured wall time.
func TestTraceDistributedSweep(t *testing.T) {
	w1, ts1 := newTestServerWith(t, Config{Engine: sweep.New(sweep.Options{Workers: 2})})
	w2, ts2 := newTestServerWith(t, Config{Engine: sweep.New(sweep.Options{Workers: 2})})
	eng := sweep.New(sweep.Options{Workers: 2})
	_, ts := newTestServerWith(t, Config{
		Engine: eng,
		Dispatcher: dispatch.New(dispatch.Options{
			Engine:    eng,
			Peers:     []string{ts1.URL, ts2.URL},
			ShardSize: 4,
		}),
	})

	// 2 ns × 2 stencils × 2 shapes = 8 specs over shard size 4: the
	// scatter plans at least 2 shards.
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v2/jobs",
		`{"sweep":{"space":{"ns":[64,128],"stencils":["5-point","9-point"],"shapes":["strip","square"],`+
			`"machines":[{"type":"sync-bus"}]}}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get(telemetry.TraceIDHeader) == "" {
		t.Fatalf("202 response carries no %s header", telemetry.TraceIDHeader)
	}
	var accepted JobJSON
	if err := json.Unmarshal(raw, &accepted); err != nil {
		t.Fatal(err)
	}

	job := pollJob(t, ts.URL, accepted.ID, func(j JobJSON) bool {
		return JobStateTerminal(j.State)
	})
	if job.State != "succeeded" {
		t.Fatalf("job ended %s (%s)", job.State, job.Reason)
	}
	if job.Progress.Shards < 2 {
		t.Fatalf("job ran %d shards, want >= 2 (the distributed path)", job.Progress.Shards)
	}
	if job.Trace == nil || job.Trace.ID == "" {
		t.Fatalf("terminal job carries no trace block: %+v", job)
	}
	if job.Trace.CriticalPathMs > job.Trace.WallMs*1.0001+0.001 {
		t.Fatalf("critical path %.3fms exceeds wall %.3fms", job.Trace.CriticalPathMs, job.Trace.WallMs)
	}

	resp, raw = doJSON(t, http.MethodGet, ts.URL+"/v1/traces/"+job.Trace.ID, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace status %d: %s", resp.StatusCode, raw)
	}
	var tr TraceResponse
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.SpanCount != len(tr.Spans) || tr.SpanCount != job.Trace.Spans {
		t.Fatalf("span counts disagree: response %d, spans %d, job block %d",
			tr.SpanCount, len(tr.Spans), job.Trace.Spans)
	}
	var jobSpans, shardSpans int
	var jobSpanID string
	for _, sp := range tr.Spans {
		switch sp.Name {
		case "job":
			jobSpans++
			jobSpanID = sp.SpanID
		case "shard":
			shardSpans++
		}
	}
	if jobSpans != 1 {
		t.Fatalf("trace has %d job spans, want 1:\n%s", jobSpans, raw)
	}
	if shardSpans != job.Progress.Shards {
		t.Fatalf("trace has %d shard spans, job ran %d shards:\n%s", shardSpans, job.Progress.Shards, raw)
	}
	for _, sp := range tr.Spans {
		if sp.Name == "shard" && sp.ParentID != jobSpanID {
			t.Fatalf("shard span %s parented to %q, want job span %s", sp.SpanID, sp.ParentID, jobSpanID)
		}
	}
	// Summary consistency: the wall covers the job span, the critical
	// path threads job→slowest shard, and the job's own measured
	// runtime bounds both (the HTTP submit span isn't part of this
	// trace's job subtree, so compare against the job timestamps).
	if tr.CriticalPathMs > tr.WallMs*1.0001+0.001 {
		t.Fatalf("critical path %.3fms exceeds wall %.3fms", tr.CriticalPathMs, tr.WallMs)
	}
	if tr.SerialMs < tr.CriticalPathMs {
		t.Fatalf("serial %.3fms below critical path %.3fms", tr.SerialMs, tr.CriticalPathMs)
	}
	if job.StartedAt != nil && job.FinishedAt != nil {
		measured := job.FinishedAt.Sub(*job.StartedAt).Seconds() * 1000
		if tr.WallMs > measured*1.5+10 {
			t.Fatalf("trace wall %.3fms wildly exceeds job runtime %.3fms", tr.WallMs, measured)
		}
	}

	// Header propagation: each worker recorded its stream handling
	// under the same trace id, parented to a coordinator shard span.
	workerSpans := 0
	for _, w := range []*Server{w1, w2} {
		if view, ok := w.Tracer().Trace(job.Trace.ID); ok {
			for _, sp := range view.Spans {
				if sp.Name == "sweep_stream" && sp.ParentID != "" {
					workerSpans++
				}
			}
		}
	}
	if workerSpans == 0 {
		t.Fatal("no worker recorded a sweep_stream span under the coordinator's trace id")
	}
}

// JobStateTerminal mirrors the client-side terminal check for JobJSON.
func JobStateTerminal(state string) bool {
	return state == "succeeded" || state == "failed" || state == "cancelled"
}

// TestTraceDisabled: DisableTracing removes every trace artifact —
// no response header, no job trace block, 404 on the read API.
func TestTraceDisabled(t *testing.T) {
	_, ts := newTestServerWith(t, Config{DisableTracing: true})
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v2/jobs",
		`{"sweep":{"space":{"ns":[64],"stencils":["5-point"],"shapes":["square"],"machines":[{"type":"sync-bus"}]}}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, raw)
	}
	if h := resp.Header.Get(telemetry.TraceIDHeader); h != "" {
		t.Fatalf("tracing disabled but response carries %s: %q", telemetry.TraceIDHeader, h)
	}
	var accepted JobJSON
	if err := json.Unmarshal(raw, &accepted); err != nil {
		t.Fatal(err)
	}
	job := pollJob(t, ts.URL, accepted.ID, func(j JobJSON) bool { return JobStateTerminal(j.State) })
	if job.Trace != nil {
		t.Fatalf("tracing disabled but job carries a trace block: %+v", job.Trace)
	}
	resp, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/traces/0123456789abcdef", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET trace with tracing disabled: status %d, want 404", resp.StatusCode)
	}
}

// TestTraceHeaderAdoption: a caller-supplied X-Trace-Id is adopted
// verbatim (and echoed), so a client can pre-name the trace and fetch
// it without parsing the response.
func TestTraceHeaderAdoption(t *testing.T) {
	_, ts := newTestServerWith(t, Config{})
	const tid = "feedfacecafebeef"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/optimize",
		strings.NewReader(`{"n":64,"stencil":"5-point","shape":"square","machine":{"type":"sync-bus"}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(telemetry.TraceIDHeader, tid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(telemetry.TraceIDHeader); got != tid {
		t.Fatalf("echoed trace id %q, want %q", got, tid)
	}
	resp, raw := doJSON(t, http.MethodGet, ts.URL+"/v1/traces/"+tid, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET adopted trace status %d: %s", resp.StatusCode, raw)
	}
	var tr TraceResponse
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != tid || tr.SpanCount == 0 {
		t.Fatalf("adopted trace came back %+v", tr)
	}
}

// TestAccessLogTenantAndAdmission: the access log line names the tenant
// and the admission outcome for an admitted evaluation request.
func TestAccessLogTenantAndAdmission(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(&syncWriter{mu: &mu, w: &buf}, nil))
	_, ts := newTestServerWith(t, Config{Logger: logger})
	doJSON(t, http.MethodPost, ts.URL+"/v1/optimize",
		`{"n":64,"stencil":"5-point","shape":"square","machine":{"type":"sync-bus"}}`)
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	var entry map[string]any
	if err := json.Unmarshal([]byte(out), &entry); err != nil {
		t.Fatalf("access log is not one JSON line: %q", out)
	}
	if entry["tenant"] != "anonymous" {
		t.Fatalf("access log entry has tenant %v, want anonymous: %+v", entry["tenant"], entry)
	}
	if entry["admission"] != "admitted" {
		t.Fatalf("access log entry has admission %v, want admitted: %+v", entry["admission"], entry)
	}
}
