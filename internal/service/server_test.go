package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"optspeed/internal/core"
	"optspeed/internal/partition"
	"optspeed/internal/stencil"
	"optspeed/internal/sweep"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestOptimizeEndpoint(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name       string
		body       string
		wantStatus int
		check      func(t *testing.T, body []byte)
	}{
		{
			name:       "valid sync-bus optimize",
			body:       `{"n":512,"stencil":"5-point","shape":"square","machine":{"type":"sync-bus"}}`,
			wantStatus: http.StatusOK,
			check: func(t *testing.T, body []byte) {
				var got OptimizeResponse
				if err := json.Unmarshal(body, &got); err != nil {
					t.Fatal(err)
				}
				p := core.MustProblem(512, stencil.FivePoint, partition.Square)
				want, err := core.Optimize(p, core.DefaultSyncBus(0))
				if err != nil {
					t.Fatal(err)
				}
				if got.Procs != want.Procs || got.Speedup != want.Speedup {
					t.Fatalf("served %d/%g, core says %d/%g",
						got.Procs, got.Speedup, want.Procs, want.Speedup)
				}
				if got.Arch != "sync-bus" {
					t.Fatalf("arch %q", got.Arch)
				}
			},
		},
		{
			name:       "snapped optimize",
			body:       `{"n":256,"stencil":"9-point","shape":"square","machine":{"type":"sync-bus"},"snapped":true}`,
			wantStatus: http.StatusOK,
			check: func(t *testing.T, body []byte) {
				var got OptimizeResponse
				if err := json.Unmarshal(body, &got); err != nil {
					t.Fatal(err)
				}
				if got.Procs < 1 || got.Speedup <= 0 {
					t.Fatalf("degenerate snapped result: %+v", got)
				}
			},
		},
		{
			name:       "invalid stencil",
			body:       `{"n":512,"stencil":"7-point","shape":"square","machine":{"type":"sync-bus"}}`,
			wantStatus: http.StatusBadRequest,
			check: func(t *testing.T, body []byte) {
				var got errorResponse
				if err := json.Unmarshal(body, &got); err != nil {
					t.Fatal(err)
				}
				if !strings.Contains(got.Error, "7-point") {
					t.Fatalf("error does not name the bad stencil: %q", got.Error)
				}
			},
		},
		{
			name:       "invalid machine type",
			body:       `{"n":512,"stencil":"5-point","shape":"square","machine":{"type":"quantum"}}`,
			wantStatus: http.StatusBadRequest,
		},
		{
			name:       "invalid grid size",
			body:       `{"n":-4,"stencil":"5-point","shape":"square","machine":{"type":"sync-bus"}}`,
			wantStatus: http.StatusBadRequest,
		},
		{
			name:       "unknown field rejected",
			body:       `{"n":512,"stencil":"5-point","shape":"square","machne":{"type":"sync-bus"}}`,
			wantStatus: http.StatusBadRequest,
		},
		{
			name:       "malformed json",
			body:       `{"n":`,
			wantStatus: http.StatusBadRequest,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/optimize", tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d; body %s", resp.StatusCode, tc.wantStatus, body)
			}
			if tc.check != nil {
				tc.check(t, body)
			}
		})
	}
}

func TestOptimizeMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/optimize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/optimize returned %d, want 405", resp.StatusCode)
	}
}

func TestSweepEndpointCacheHits(t *testing.T) {
	ts := newTestServer(t)
	body := `{"space":{"ns":[64,128,256],"stencils":["5-point","9-point"],` +
		`"shapes":["strip","square"],"machines":[{"type":"sync-bus"},{"type":"banyan"}]}}`

	resp, raw := postJSON(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var first SweepResponse
	if err := json.Unmarshal(raw, &first); err != nil {
		t.Fatal(err)
	}
	wantSpecs := 3 * 2 * 2 * 2
	if first.Stats.Specs != wantSpecs || len(first.Results) != wantSpecs {
		t.Fatalf("first sweep returned %d/%d results, want %d",
			first.Stats.Specs, len(first.Results), wantSpecs)
	}
	if first.Stats.Evaluated != wantSpecs || first.Stats.Errors != 0 {
		t.Fatalf("first sweep stats %+v", first.Stats)
	}
	for i, r := range first.Results {
		if r.Index != i {
			t.Fatalf("results out of order at %d: %+v", i, r)
		}
		if r.Procs < 1 || r.Speedup <= 0 {
			t.Fatalf("degenerate result %d: %+v", i, r)
		}
	}

	// The identical request again: all answers must come from the cache.
	resp, raw = postJSON(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var second SweepResponse
	if err := json.Unmarshal(raw, &second); err != nil {
		t.Fatal(err)
	}
	if second.Stats.CacheHits == 0 {
		t.Fatal("repeated sweep reported zero cache hits")
	}
	if second.Stats.CacheHits != wantSpecs || second.Stats.Evaluated != 0 {
		t.Fatalf("repeated sweep stats %+v, want all %d hits", second.Stats, wantSpecs)
	}
	for i := range second.Results {
		a, b := first.Results[i], second.Results[i]
		if a.Procs != b.Procs || a.Speedup != b.Speedup {
			t.Fatalf("cached result %d diverges: %+v vs %+v", i, a, b)
		}
	}
}

func TestSweepExplicitSpecsAndErrors(t *testing.T) {
	ts := newTestServer(t)
	body := `{"specs":[
		{"op":"min-grid","n":16,"stencil":"5-point","shape":"strip","machine":{"type":"sync-bus"},"procs":8},
		{"n":128,"stencil":"bogus","shape":"square","machine":{"type":"sync-bus"}}
	]}`
	resp, raw := postJSON(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var got SweepResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Stats.Errors != 1 || got.Stats.Evaluated != 1 {
		t.Fatalf("stats %+v, want 1 evaluated + 1 error", got.Stats)
	}
	if got.Results[0].Grid < 2 {
		t.Fatalf("min-grid result %+v", got.Results[0])
	}
	if got.Results[1].Error == "" {
		t.Fatal("bad spec produced no error")
	}
}

func TestSweepRequestLimits(t *testing.T) {
	srv := New(Config{MaxSweepSpecs: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _ := postJSON(t, ts.URL+"/v1/sweep", `{}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty sweep: status %d, want 400", resp.StatusCode)
	}

	big := `{"space":{"ns":[64,128,256],"stencils":["5-point","9-point"],` +
		`"shapes":["square"],"machines":[{"type":"sync-bus"}]}}`
	resp, _ = postJSON(t, ts.URL+"/v1/sweep", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized sweep: status %d, want 413", resp.StatusCode)
	}

	// An axis product that overflows int64 must be rejected, not
	// expanded: (2^13)^5 = 2^65 wraps to 0 if multiplied naively,
	// slipping under any limit and sending Expand into ~10^19 appends.
	ints := strings.TrimSuffix(strings.Repeat("1,", 1<<13), ",")
	strs := strings.TrimSuffix(strings.Repeat(`"x",`, 1<<13), ",")
	objs := strings.TrimSuffix(strings.Repeat("{},", 1<<13), ",")
	overflow := `{"space":{"ns":[` + ints + `],"stencils":[` + strs + `],` +
		`"shapes":[` + strs + `],"machines":[` + objs + `],"procs":[` + ints + `]}}`
	resp, _ = postJSON(t, ts.URL+"/v1/sweep", overflow)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("overflowing sweep: status %d, want 413", resp.StatusCode)
	}
}

func TestBodySizeLimit(t *testing.T) {
	srv := New(Config{MaxBodyBytes: 256})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	huge := `{"n":512,"stencil":"5-point","shape":"square","machine":{"type":"sync-bus"}` +
		strings.Repeat(" ", 1024) + `}`
	resp, raw := postJSON(t, ts.URL+"/v1/optimize", huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413; %s", resp.StatusCode, raw)
	}
}

func TestSweepScaledOpPayload(t *testing.T) {
	ts := newTestServer(t)
	body := `{"specs":[{"op":"scaled","n":256,"stencil":"5-point","shape":"square",` +
		`"machine":{"type":"hypercube"},"points_per_proc":64}]}`
	resp, raw := postJSON(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var got SweepResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	r := got.Results[0]
	if r.ProcsUsed <= 0 || r.CycleTime <= 0 || r.Speedup <= 0 {
		t.Fatalf("scaled payload dropped on the wire: %+v", r)
	}
	p := core.MustProblem(256, stencil.FivePoint, partition.Square)
	series, err := core.ScaledSpeedupSeries(p, core.DefaultHypercube(0), 64, []int{256})
	if err != nil {
		t.Fatal(err)
	}
	if r.ProcsUsed != series[0].Procs || r.Speedup != series[0].Speedup {
		t.Fatalf("scaled wire values %+v != core %+v", r, series[0])
	}
}

func TestArchitecturesEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/architectures")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var got ArchitecturesResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Architectures) != len(core.MachineTypes()) {
		t.Fatalf("catalog has %d entries, want %d", len(got.Architectures), len(core.MachineTypes()))
	}
	for i, typ := range core.MachineTypes() {
		if got.Architectures[i].Type != typ {
			t.Fatalf("catalog[%d] = %q, want %q", i, got.Architectures[i].Type, typ)
		}
		if got.Architectures[i].Default.Tflp == 0 {
			t.Fatalf("catalog[%d] defaults not filled: %+v", i, got.Architectures[i].Default)
		}
	}
	if len(got.Stencils) != 4 || len(got.Shapes) != 2 {
		t.Fatalf("stencils %v shapes %v", got.Stencils, got.Shapes)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	// Drive some traffic: one ok optimize, one failing optimize.
	postJSON(t, ts.URL+"/v1/optimize",
		`{"n":128,"stencil":"5-point","shape":"square","machine":{"type":"sync-bus"}}`)
	postJSON(t, ts.URL+"/v1/optimize",
		`{"n":128,"stencil":"nope","shape":"square","machine":{"type":"sync-bus"}}`)

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	ep, ok := got.Endpoints["optimize"]
	if !ok {
		t.Fatalf("no optimize endpoint metrics: %+v", got.Endpoints)
	}
	if ep.Count != 2 || ep.Errors != 1 {
		t.Fatalf("optimize metrics %+v, want count=2 errors=1", ep)
	}
	if got.Engine.Evaluations != 1 {
		t.Fatalf("engine stats %+v, want 1 evaluation", got.Engine)
	}
}

func TestCancelledRequestRecordedNotAsSuccess(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/optimize",
		strings.NewReader(`{"n":256,"stencil":"5-point","shape":"square","machine":{"type":"sync-bus"}}`))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req.WithContext(ctx))
	if rec.Code != 499 {
		t.Fatalf("cancelled request recorded status %d, want 499", rec.Code)
	}
	ep := srv.metrics.snapshot()["optimize"]
	if ep.Cancelled != 1 || ep.Errors != 0 {
		t.Fatalf("cancelled request metrics %+v, want cancelled=1 errors=0", ep)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestServerSharesEngine(t *testing.T) {
	eng := sweep.New(sweep.Options{})
	srv := New(Config{Engine: eng})
	defer srv.Close()
	if srv.Engine() != eng {
		t.Fatal("server did not adopt the provided engine")
	}
}
