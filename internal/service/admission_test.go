package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"optspeed/internal/admit"
)

const optimizeBody = `{"n":256,"stencil":"5-point","shape":"square","machine":{"type":"sync-bus"}}`

// doRequest is doJSON plus arbitrary request headers.
func doRequest(t *testing.T, method, url, body string, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// envelope decodes a v2 error body's fields under test.
func envelope(t *testing.T, raw []byte) (code, tenant string, retryAfterMs int64) {
	t.Helper()
	var env struct {
		Error struct {
			Code         string `json:"code"`
			Tenant       string `json:"tenant"`
			RetryAfterMs int64  `json:"retry_after_ms"`
		} `json:"error"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("bad error envelope %s: %v", raw, err)
	}
	return env.Error.Code, env.Error.Tenant, env.Error.RetryAfterMs
}

func testTenantsController(t *testing.T, tf *admit.TenantsFile, gate admit.GateConfig) *admit.Controller {
	t.Helper()
	return admit.New(admit.Config{Tenants: tf, Gate: gate})
}

// TestTenantRateLimit429 drives a burst-1 tenant past its rate and
// checks the whole rejection contract: status, stable code, tenant
// attribution, Retry-After header, and the millisecond envelope field.
func TestTenantRateLimit429(t *testing.T) {
	adm := testTenantsController(t, &admit.TenantsFile{
		Tenants: []admit.TenantConfig{{Name: "acme", Key: "k-acme", Rate: 0.001, Burst: 1}},
	}, admit.GateConfig{})
	_, ts := newTestServerWith(t, Config{Admission: adm})

	bearer := map[string]string{"Authorization": "Bearer k-acme"}
	resp, raw := doRequest(t, http.MethodPost, ts.URL+"/v1/optimize", optimizeBody, bearer)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request status %d: %s", resp.StatusCode, raw)
	}
	resp, raw = doRequest(t, http.MethodPost, ts.URL+"/v1/optimize", optimizeBody, bearer)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate-limited request status %d: %s", resp.StatusCode, raw)
	}
	code, tenant, retryMs := envelope(t, raw)
	if code != admit.CodeRateLimited || tenant != "acme" || retryMs <= 0 {
		t.Fatalf("envelope code=%q tenant=%q retry_after_ms=%d: %s", code, tenant, retryMs, raw)
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("Retry-After header %q, want whole seconds >= 1", resp.Header.Get("Retry-After"))
	}
	// X-API-Key resolves to the same tenant, which is still limited.
	resp, raw = doRequest(t, http.MethodPost, ts.URL+"/v1/optimize", optimizeBody,
		map[string]string{"X-API-Key": "k-acme"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("X-API-Key request status %d: %s", resp.StatusCode, raw)
	}
}

// TestUnknownAPIKey401: a typo'd key must be a hard authentication
// failure, never a silent fall-through into the anonymous tier.
func TestUnknownAPIKey401(t *testing.T) {
	adm := testTenantsController(t, &admit.TenantsFile{
		Tenants: []admit.TenantConfig{{Name: "acme", Key: "k-acme"}},
	}, admit.GateConfig{})
	_, ts := newTestServerWith(t, Config{Admission: adm})
	resp, raw := doRequest(t, http.MethodPost, ts.URL+"/v1/optimize", optimizeBody,
		map[string]string{"Authorization": "Bearer nope"})
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unknown key status %d: %s", resp.StatusCode, raw)
	}
	if code, _, _ := envelope(t, raw); code != codeUnknownAPIKey {
		t.Fatalf("unknown key code %q: %s", code, raw)
	}
}

// TestGateShed503: with the single slot held and no queue, a request is
// shed with an explicit 503 overloaded carrying Retry-After.
func TestGateShed503(t *testing.T) {
	adm := admit.New(admit.Config{Gate: admit.GateConfig{
		MaxConcurrent: 1, MaxQueue: -1, MaxWait: 20 * time.Millisecond,
	}})
	_, ts := newTestServerWith(t, Config{Admission: adm})

	release, err := adm.Gate().Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	resp, raw := doRequest(t, http.MethodPost, ts.URL+"/v1/optimize", optimizeBody, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed status %d: %s", resp.StatusCode, raw)
	}
	code, _, retryMs := envelope(t, raw)
	if code != admit.CodeOverloaded || retryMs <= 0 {
		t.Fatalf("shed envelope code=%q retry_after_ms=%d: %s", code, retryMs, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed 503 without a Retry-After header")
	}
}

// TestDeadlineHeader covers the X-Request-Deadline contract: expired on
// arrival is an immediate 504, garbage is a 400, a live budget passes.
func TestDeadlineHeader(t *testing.T) {
	_, ts := newTestServerWith(t, Config{})
	cases := []struct {
		value  string
		status int
		code   string
	}{
		{"0s", http.StatusGatewayTimeout, codeDeadlineExceeded},
		{"-5s", http.StatusGatewayTimeout, codeDeadlineExceeded},
		{time.Now().Add(-time.Minute).UTC().Format(time.RFC3339Nano), http.StatusGatewayTimeout, codeDeadlineExceeded},
		{"not-a-deadline", http.StatusBadRequest, codeInvalidRequest},
		{"10s", http.StatusOK, ""},
		{time.Now().Add(time.Minute).UTC().Format(time.RFC3339Nano), http.StatusOK, ""},
	}
	for _, tc := range cases {
		resp, raw := doRequest(t, http.MethodPost, ts.URL+"/v1/optimize", optimizeBody,
			map[string]string{"X-Request-Deadline": tc.value})
		if resp.StatusCode != tc.status {
			t.Fatalf("deadline %q: status %d, want %d: %s", tc.value, resp.StatusCode, tc.status, raw)
		}
		if tc.code != "" {
			if code, _, _ := envelope(t, raw); code != tc.code {
				t.Fatalf("deadline %q: code %q, want %q: %s", tc.value, code, tc.code, raw)
			}
		}
	}
}

// TestJobQuotaLifecycle: a tenant at its concurrent-job quota gets a
// 429 quota_exceeded on submit, and the quota slot is returned when the
// job reaches a terminal state — so the next submit is admitted.
func TestJobQuotaLifecycle(t *testing.T) {
	adm := testTenantsController(t, &admit.TenantsFile{
		Tenants: []admit.TenantConfig{{Name: "quota", Key: "k-quota", MaxConcurrentJobs: 1}},
	}, admit.GateConfig{})
	_, ts := newTestServerWith(t, Config{Admission: adm})
	bearer := map[string]string{"Authorization": "Bearer k-quota"}
	jobBody := `{"sweep":{"space":{"ns":[64],"stencils":["5-point"],"shapes":["strip"],"machines":[{"type":"sync-bus"}]}}}`

	// Fill the tenant's only job slot out of band, then watch the HTTP
	// submit bounce deterministically.
	tn, err := adm.Resolve("k-quota")
	if err != nil {
		t.Fatal(err)
	}
	release, rej := tn.AcquireJob(1)
	if rej != nil {
		t.Fatal(rej)
	}
	resp, raw := doRequest(t, http.MethodPost, ts.URL+"/v2/jobs", jobBody, bearer)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit status %d: %s", resp.StatusCode, raw)
	}
	if code, tenant, _ := envelope(t, raw); code != admit.CodeQuotaExceeded || tenant != "quota" {
		t.Fatalf("over-quota envelope code=%q tenant=%q: %s", code, tenant, raw)
	}
	release()

	// With the slot free the submit is admitted; once that job turns
	// terminal, its OnDone release frees the quota for the next one.
	resp, raw = doRequest(t, http.MethodPost, ts.URL+"/v2/jobs", jobBody, bearer)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, raw)
	}
	var job JobJSON
	if err := json.Unmarshal(raw, &job); err != nil {
		t.Fatal(err)
	}
	pollJob(t, ts.URL, job.ID, terminal)
	// The OnDone release fires as the runner unwinds, which can trail
	// the terminal snapshot by a beat — retry briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, raw = doRequest(t, http.MethodPost, ts.URL+"/v2/jobs", jobBody, bearer)
		if resp.StatusCode == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("quota never released after terminal job: status %d: %s", resp.StatusCode, raw)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFailedSubmitReleasesQuota: a submission the store rejects must
// hand the reserved quota straight back.
func TestFailedSubmitReleasesQuota(t *testing.T) {
	adm := testTenantsController(t, &admit.TenantsFile{
		Tenants: []admit.TenantConfig{{Name: "q1", Key: "k-q1", MaxConcurrentJobs: 1}},
	}, admit.GateConfig{})
	srv, ts := newTestServerWith(t, Config{Admission: adm})
	bearer := map[string]string{"Authorization": "Bearer k-q1"}
	jobBody := `{"sweep":{"space":{"ns":[64],"stencils":["5-point"],"shapes":["strip"],"machines":[{"type":"sync-bus"}]}}}`

	// Closing the store makes every submit fail with ErrClosed.
	srv.store.Close()
	resp, raw := doRequest(t, http.MethodPost, ts.URL+"/v2/jobs", jobBody, bearer)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit to closed store status %d: %s", resp.StatusCode, raw)
	}
	tn, err := adm.Resolve("k-q1")
	if err != nil {
		t.Fatal(err)
	}
	if st := tn.Stats(); st.InFlightJobs != 0 || st.QueuedCost != 0 {
		t.Fatalf("quota leaked after failed submit: %+v", st)
	}
}

// TestMetricsReportsAdmission: /v1/metrics carries the admission block
// with gate counters and per-tenant stats.
func TestMetricsReportsAdmission(t *testing.T) {
	adm := testTenantsController(t, &admit.TenantsFile{
		Tenants: []admit.TenantConfig{{Name: "acme", Key: "k-acme", Rate: 0.001, Burst: 1}},
	}, admit.GateConfig{})
	_, ts := newTestServerWith(t, Config{Admission: adm})
	bearer := map[string]string{"Authorization": "Bearer k-acme"}
	doRequest(t, http.MethodPost, ts.URL+"/v1/optimize", optimizeBody, bearer)
	doRequest(t, http.MethodPost, ts.URL+"/v1/optimize", optimizeBody, bearer) // rate-limited
	resp, raw := doRequest(t, http.MethodGet, ts.URL+"/v1/metrics", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d: %s", resp.StatusCode, raw)
	}
	var m struct {
		Admission *admit.Stats `json:"admission"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Admission == nil {
		t.Fatalf("metrics without admission block: %s", raw)
	}
	if m.Admission.Gate.Capacity <= 0 {
		t.Fatalf("admission gate capacity %d", m.Admission.Gate.Capacity)
	}
	acme := m.Admission.Tenants["acme"]
	if acme.Admitted != 1 || acme.RateLimited != 1 {
		t.Fatalf("acme stats %+v, want 1 admitted / 1 rate-limited", acme)
	}
	if _, ok := m.Admission.Tenants[admit.AnonymousTenant]; !ok {
		t.Fatalf("metrics missing the anonymous tenant: %s", raw)
	}
}

// TestShedRequestsDoNotLeakGoroutines hammers a zero-queue gate with
// concurrent requests that all shed, plus a volley of expired-deadline
// requests, and asserts the goroutine count settles back to its
// starting neighborhood — shed paths must not park anything.
func TestShedRequestsDoNotLeakGoroutines(t *testing.T) {
	adm := admit.New(admit.Config{Gate: admit.GateConfig{
		MaxConcurrent: 1, MaxQueue: -1, MaxWait: 10 * time.Millisecond,
	}})
	_, ts := newTestServerWith(t, Config{Admission: adm})
	client := &http.Client{}

	before := runtime.NumGoroutine()
	release, err := adm.Gate().Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var sheds, timeouts, unexpected [64]int
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			headers := map[string]string{}
			want := http.StatusServiceUnavailable
			if i%4 == 0 {
				headers["X-Request-Deadline"] = "0s"
				want = http.StatusGatewayTimeout
			}
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/optimize", strings.NewReader(optimizeBody))
			if err != nil {
				unexpected[i]++
				return
			}
			req.Header.Set("Content-Type", "application/json")
			for k, v := range headers {
				req.Header.Set(k, v)
			}
			resp, err := client.Do(req)
			if err != nil {
				unexpected[i]++
				return
			}
			resp.Body.Close()
			switch {
			case resp.StatusCode == want && want == http.StatusServiceUnavailable:
				sheds[i]++
			case resp.StatusCode == want:
				timeouts[i]++
			default:
				unexpected[i]++
			}
		}(i)
	}
	wg.Wait()
	release()

	var nShed, nTimeout, nOther int
	for i := range sheds {
		nShed += sheds[i]
		nTimeout += timeouts[i]
		nOther += unexpected[i]
	}
	if nOther != 0 || nShed == 0 || nTimeout == 0 {
		t.Fatalf("sheds=%d timeouts=%d unexpected=%d", nShed, nTimeout, nOther)
	}

	client.CloseIdleConnections()
	ts.Client().CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+8 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d never settled near baseline %d after shed burst",
				runtime.NumGoroutine(), before)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
