package service

import (
	"context"
	"log/slog"
	"net/http"
	"time"

	"optspeed/internal/jobs"
)

// requestIDHeader is honored on requests and echoed on every response.
const requestIDHeader = "X-Request-ID"

type ctxKey int

const requestIDKey ctxKey = iota

// RequestIDFrom returns the request id assigned by the middleware, or
// "" outside a request context.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// validRequestID accepts client-supplied ids that are safe to echo into
// headers and logs: short and limited to URL-ish token characters.
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// withRequestID honors an incoming X-Request-ID (when well-formed) or
// generates one, echoes it on the response, and stashes it in the
// request context for the error envelope and the access log.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(requestIDHeader)
		if !validRequestID(id) {
			id = jobs.NewID()
		}
		w.Header().Set(requestIDHeader, id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey, id)))
	})
}

// withAccessLog emits one structured line per request. A nil logger
// disables the log without disturbing the middleware chain.
func (s *Server) withAccessLog(next http.Handler) http.Handler {
	if s.logger == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("request_id", RequestIDFrom(r.Context())),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status),
			slog.Duration("duration", time.Since(start)),
		)
	})
}
