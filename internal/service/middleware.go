package service

import (
	"context"
	"log/slog"
	"net/http"
	"time"

	"optspeed/internal/jobs"
	"optspeed/internal/telemetry"
)

// requestIDHeader is honored on requests and echoed on every response.
const requestIDHeader = "X-Request-ID"

type ctxKey int

// Context keys (explicit values keep the space auditable; the request
// id itself lives on telemetry's keys so dispatch can forward it to
// peers without importing this package).
const (
	accessInfoKey  ctxKey = 0
	tenantCtxKey   ctxKey = 1
	deadlineCtxKey ctxKey = 2
)

// RequestIDFrom returns the request id assigned by the middleware, or
// "" outside a request context.
func RequestIDFrom(ctx context.Context) string {
	return telemetry.RequestIDFrom(ctx)
}

// validRequestID accepts client-supplied ids that are safe to echo into
// headers and logs: short and limited to URL-ish token characters.
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// withRequestID honors an incoming X-Request-ID (when well-formed) or
// generates one, echoes it on the response, and stashes it in the
// request context for the error envelope, the access log, and — via
// telemetry's context keys — peer forwarding in the dispatch layer.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(requestIDHeader)
		if !validRequestID(id) {
			id = jobs.NewID()
		}
		w.Header().Set(requestIDHeader, id)
		next.ServeHTTP(w, r.WithContext(telemetry.WithRequestID(r.Context(), id)))
	})
}

// accessInfo collects per-request facts discovered after the access-log
// middleware ran but worth one log line: the resolved tenant and how
// admission treated the request. The holder is mutable through the
// context on purpose — inner middleware and handlers fill it, the
// access log reads it after the handler returns.
type accessInfo struct {
	tenant    string
	admission string // "", "admitted", "rate_limited", "shed"
}

// accessInfoFrom returns the request's accessInfo holder, nil outside
// the access-log middleware (direct handler tests, nil logger).
func accessInfoFrom(ctx context.Context) *accessInfo {
	ai, _ := ctx.Value(accessInfoKey).(*accessInfo)
	return ai
}

// noteTenant records the resolved tenant for the access log.
func noteTenant(ctx context.Context, name string) {
	if ai := accessInfoFrom(ctx); ai != nil {
		ai.tenant = name
	}
}

// noteAdmission records the admission outcome for the access log.
// Later notes win: a request admitted by the tenant rate check and
// then shed by the gate logs as shed.
func noteAdmission(ctx context.Context, outcome string) {
	if ai := accessInfoFrom(ctx); ai != nil {
		ai.admission = outcome
	}
}

// withAccessLog emits one structured line per request. A nil logger
// disables the log without disturbing the middleware chain.
func (s *Server) withAccessLog(next http.Handler) http.Handler {
	if s.logger == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		info := &accessInfo{}
		r = r.WithContext(context.WithValue(r.Context(), accessInfoKey, info))
		next.ServeHTTP(rec, r)
		attrs := []slog.Attr{
			slog.String("request_id", RequestIDFrom(r.Context())),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status),
			slog.Duration("duration", time.Since(start)),
		}
		if info.tenant != "" {
			attrs = append(attrs, slog.String("tenant", info.tenant))
		}
		if info.admission != "" {
			attrs = append(attrs, slog.String("admission", info.admission))
		}
		s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
	})
}
