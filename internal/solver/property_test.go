package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"optspeed/internal/grid"
)

// TestRandomConfigEquivalence: for random grid sizes, worker counts,
// decompositions, and iteration counts, every solver (shared-memory
// strips/blocks, distributed strips, distributed blocks) produces the
// identical grid.
func TestRandomConfigEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	f := func() bool {
		n := 8 + rng.Intn(40)
		iters := 1 + rng.Intn(12)
		workers := 1 + rng.Intn(12)
		k := grid.Laplace5(n)

		ref := grid.MustNew(n)
		ref.SetBoundary(func(i, j int) float64 { return math.Sin(float64(i-j) * 0.3) })
		ref.FillFunc(func(i, j int) float64 { return float64((i*7+j*3)%5) * 0.1 })
		refCopy := func() *grid.Grid { return ref.Clone() }

		serial := refCopy()
		if _, err := Solve(serial, k, nil, Config{Workers: 1, MaxIterations: iters}); err != nil {
			return false
		}

		shared := refCopy()
		d := Decomposition(rng.Intn(2))
		if _, err := Solve(shared, k, nil, Config{Workers: workers, Decomposition: d, MaxIterations: iters}); err != nil {
			return false
		}
		if serial.MaxAbsDiff(shared) != 0 {
			return false
		}

		dist := refCopy()
		if _, err := DistributedSolve(dist, k, nil, workers, iters); err != nil {
			return false
		}
		if serial.MaxAbsDiff(dist) != 0 {
			return false
		}

		blocks := refCopy()
		py, px := 1+rng.Intn(4), 1+rng.Intn(4)
		if _, err := DistributedSolveBlocks(blocks, k, nil, py, px, iters); err != nil {
			return false
		}
		return serial.MaxAbsDiff(blocks) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestMaximumPrinciple: for averaging kernels (positive weights summing
// to 1, no source) every Jacobi iterate stays within the range of the
// initial data and boundary — the discrete maximum principle. Checked
// through the parallel solver.
func TestMaximumPrinciple(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	f := func() bool {
		n := 8 + rng.Intn(30)
		k := grid.Laplace5(n)
		u := grid.MustNew(n)
		lo, hi := math.Inf(1), math.Inf(-1)
		track := func(v float64) {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		u.SetBoundary(func(i, j int) float64 {
			v := rng.Float64()*4 - 2
			return v
		})
		// Track the whole initial state (ghost ring included).
		for i := -u.Halo; i < n+u.Halo; i++ {
			for j := -u.Halo; j < n+u.Halo; j++ {
				track(u.At(i, j))
			}
		}
		if _, err := Solve(u, k, nil, Config{Workers: 4, MaxIterations: 30}); err != nil {
			return false
		}
		const eps = 1e-12
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := u.At(i, j)
				if v < lo-eps || v > hi+eps {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
