package solver

import (
	"fmt"
	"runtime"
	"sync"

	"optspeed/internal/grid"
	"optspeed/internal/stencil"
)

// RedBlackConfig configures the parallel red-black Gauss-Seidel solver.
type RedBlackConfig struct {
	Workers       int     // goroutines; 0 = GOMAXPROCS
	MaxIterations int     // hard cap; 0 = 10000
	Tolerance     float64 // stop when global Σ(Δu)² < Tolerance; 0 = run to cap
	Omega         float64 // relaxation factor; 0 = 1 (Gauss-Seidel)
}

// SolveRedBlack runs parallel red-black Gauss-Seidel (with optional
// over-relaxation) on a 5-point-structured kernel: points are colored by
// (i+j) parity; all red points update from black neighbors, a barrier,
// then all black points update from the fresh red values. Unlike plain
// SOR the sweep parallelizes exactly — within a color no point reads
// another point of the same color — so the parallel result is
// bit-identical to the serial red-black sweep for any worker count.
//
// Red-black ordering converges roughly twice as fast per sweep as Jacobi
// on the model problems, which is why real codes prefer it; it is the
// natural "extension" solver on top of the paper's Jacobi analysis (the
// communication structure — one perimeter per color phase — is the same,
// so the paper's model applies per half-sweep).
//
// The kernel must have Chebyshev radius 1 and no diagonal offsets (the
// coloring argument requires axis neighbors only), e.g. Laplace5.
func SolveRedBlack(u *grid.Grid, k grid.Kernel, f *grid.Grid, cfg RedBlackConfig) (Result, error) {
	if u == nil {
		return Result{}, fmt.Errorf("solver: nil grid")
	}
	if k.Stencil.ChebyshevRadius() != 1 || k.Stencil.HasDiagonal() {
		return Result{}, fmt.Errorf("solver: red-black needs an axis-only radius-1 stencil, got %s", k.Stencil.Name())
	}
	if k.Stencil.ChebyshevRadius() > u.Halo {
		return Result{}, fmt.Errorf("solver: stencil radius exceeds halo")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > u.N {
		workers = u.N
	}
	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = 10000
	}
	omega := cfg.Omega
	if omega == 0 {
		omega = 1
	}
	if omega <= 0 || omega >= 2 {
		return Result{}, fmt.Errorf("solver: omega %g outside (0, 2)", omega)
	}

	regions, _, _, err := decompose(u.N, workers, Strips)
	if err != nil {
		return Result{}, err
	}
	workers = len(regions)

	offs := k.Stencil.Offsets()
	flat := make([]int, len(offs))
	for i, o := range offs {
		flat[i] = o.DI*u.Stride() + o.DJ
	}
	data := u.Data()
	halo := u.Halo
	stride := u.Stride()
	idx := func(i, j int) int { return (i+halo)*stride + (j + halo) }
	// The 5-point kernel (the red-black workhorse) takes a specialized
	// inner loop with the four neighbor loads unrolled in canonical
	// offset order — identical arithmetic to the generic flat-offset
	// loop, without its per-point table walk. Other radius-1 axis-only
	// stencils keep the generic loop.
	fast5 := k.Stencil.Equal(stencil.FivePoint)

	var (
		wg         sync.WaitGroup
		deltas     = make([]float64, workers)
		iterations int
		checks     int
		converged  bool
		finalDelta float64
	)
	sweepColor := func(w int, color int, collect bool) {
		reg := regions[w]
		var local float64
		for i := reg.r0; i < reg.r1; i++ {
			// First column of this row with (i+j)%2 == color.
			j0 := (color - i%2 + 2) % 2
			if fast5 {
				wN, wW, wE, wS := k.Weights[0], k.Weights[1], k.Weights[2], k.Weights[3]
				cf := k.RHSCoeff
				useF := f != nil && cf != 0
				for j := j0; j < u.N; j += 2 {
					base := idx(i, j)
					acc := wN*data[base-stride] + wW*data[base-1] + wE*data[base+1] + wS*data[base+stride]
					if useF {
						acc += cf * f.At(i, j)
					}
					d := omega * (acc - data[base])
					data[base] += d
					if collect {
						local += d * d
					}
				}
				continue
			}
			for j := j0; j < u.N; j += 2 {
				base := idx(i, j)
				var acc float64
				for t, fo := range flat {
					acc += k.Weights[t] * data[base+fo]
				}
				if f != nil && k.RHSCoeff != 0 {
					acc += k.RHSCoeff * f.At(i, j)
				}
				d := omega * (acc - data[base])
				data[base] += d
				if collect {
					local += d * d
				}
			}
		}
		if collect {
			deltas[w] += local
		}
	}

	// Persistent workers: one goroutine per row band for the whole
	// solve, fed one job per color phase, instead of 2·iterations·
	// workers goroutine spawns. The per-phase barrier (the WaitGroup)
	// is what makes black read fresh red values.
	type rbJob struct {
		color   int
		collect bool
	}
	jobs := make([]chan rbJob, workers)
	for w := 0; w < workers; w++ {
		jobs[w] = make(chan rbJob, 1)
		go func(w int) {
			for job := range jobs[w] {
				sweepColor(w, job.color, job.collect)
				wg.Done()
			}
		}(w)
	}
	defer func() {
		for _, ch := range jobs {
			close(ch)
		}
	}()

	for iter := 1; iter <= maxIter; iter++ {
		doCheck := cfg.Tolerance > 0
		if doCheck {
			for w := range deltas {
				deltas[w] = 0
			}
		}
		for color := 0; color < 2; color++ {
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				jobs[w] <- rbJob{color: color, collect: doCheck}
			}
			wg.Wait() // color barrier: black reads fresh red values
		}
		iterations = iter
		if doCheck {
			checks++
			var sum float64
			for _, d := range deltas {
				sum += d
			}
			finalDelta = sum
			if sum < cfg.Tolerance {
				converged = true
				break
			}
		}
	}
	return Result{
		Iterations:  iterations,
		Converged:   converged,
		FinalDelta:  finalDelta,
		Checks:      checks,
		Workers:     workers,
		PartitionsX: 1,
		PartitionsY: workers,
	}, nil
}
