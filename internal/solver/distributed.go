package solver

import (
	"fmt"

	"optspeed/internal/grid"
	"optspeed/internal/partition"
)

// DistributedSolve runs the strip-partitioned Jacobi iteration in
// message-passing style: every worker owns a private subgrid (its strip
// plus halo rows) and exchanges boundary rows with its neighbors over
// channels each iteration — the code path a hypercube or mesh machine
// executes (paper §4), with channels standing in for links. No worker
// touches another's grid; the only shared values travel in messages.
//
// The result is numerically identical to the shared-memory solver (and
// the serial one), which the tests assert.
func DistributedSolve(u *grid.Grid, k grid.Kernel, f *grid.Grid, workers, iterations int) (Result, error) {
	if u == nil {
		return Result{}, fmt.Errorf("solver: nil grid")
	}
	if iterations < 0 {
		return Result{}, fmt.Errorf("solver: negative iterations %d", iterations)
	}
	halo := k.Stencil.RowRadius()
	if halo > u.Halo {
		return Result{}, fmt.Errorf("solver: stencil radius %d exceeds grid halo %d", halo, u.Halo)
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > u.N {
		workers = u.N
	}
	// Each strip must be at least as tall as the stencil's row radius,
	// or a halo exchange would forward a neighbor's stale halo instead
	// of owned data.
	if halo > 0 && workers > u.N/halo {
		workers = u.N / halo
		if workers < 1 {
			workers = 1
		}
	}
	bands, err := partition.DecomposeStrips(u.N, workers)
	if err != nil {
		return Result{}, err
	}
	n := u.N

	// Per-worker state: local double-buffered subgrids sized to the
	// strip, with a halo ring.
	type wstate struct {
		band     partition.Band
		cur, nxt *localGrid
		rhs      *localGrid
	}
	states := make([]*wstate, workers)
	for i, b := range bands {
		// A local grid is b.Rows × n interior; reuse grid.Grid with
		// N = n and restrict sweeps to the strip's rows mapped to
		// local coordinates. For simplicity and fidelity each local
		// grid is a full n×n allocation in tests-scale problems would
		// be wasteful; instead allocate a b.Rows-tall grid by using
		// NewHalo with rectangular support emulated via full width.
		local, err := newLocal(b.Rows, n, u.Halo)
		if err != nil {
			return Result{}, err
		}
		localNext, err := newLocal(b.Rows, n, u.Halo)
		if err != nil {
			return Result{}, err
		}
		var localRHS *localGrid
		if f != nil {
			localRHS, err = newLocal(b.Rows, n, u.Halo)
			if err != nil {
				return Result{}, err
			}
		}
		// Scatter: copy the strip (with full halo) from the global grid.
		for li := -u.Halo; li < b.Rows+u.Halo; li++ {
			gi := b.Row0 + li
			for j := -u.Halo; j < n+u.Halo; j++ {
				local.SetRect(li, j, u.At(gi, j))
				localNext.SetRect(li, j, u.At(gi, j))
				if localRHS != nil && gi >= 0 && gi < n && j >= 0 && j < n {
					localRHS.SetRect(li, j, f.At(gi, j))
				}
			}
		}
		states[i] = &wstate{band: b, cur: local, nxt: localNext, rhs: localRHS}
	}

	// Channels: down[i] carries rows from worker i to i+1; up[i] from
	// worker i+1 back to i. Buffered so neighbors can post without
	// rendezvous (an asynchronous link).
	type rows [][]float64
	down := make([]chan rows, workers-1)
	up := make([]chan rows, workers-1)
	for i := range down {
		down[i] = make(chan rows, 1)
		up[i] = make(chan rows, 1)
	}

	errCh := make(chan error, workers)
	doneCh := make(chan int64, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			st := states[w]
			rowsMine := st.band.Rows
			var sent int64
			rowWords := int64(n + 2*u.Halo)
			for iter := 0; iter < iterations; iter++ {
				// Post boundary rows to neighbors (asynchronous sends).
				if w > 0 {
					up[w-1] <- extractRows(st.cur, 0, halo, n)
					sent += int64(halo) * rowWords
				}
				if w < workers-1 {
					down[w] <- extractRows(st.cur, rowsMine-halo, halo, n)
					sent += int64(halo) * rowWords
				}
				// Receive halos.
				if w > 0 {
					for r, row := range <-down[w-1] {
						storeRow(st.cur, -halo+r, row)
					}
				}
				if w < workers-1 {
					for r, row := range <-up[w] {
						storeRow(st.cur, rowsMine+r, row)
					}
				}
				// Local sweep over the whole strip.
				if err := grid.SweepRegion(st.nxt.Grid, st.cur.Grid, k, rhsGrid(st.rhs), 0, rowsMine, 0, n); err != nil {
					errCh <- err
					return
				}
				st.cur, st.nxt = st.nxt, st.cur
			}
			doneCh <- sent
		}(w)
	}
	var totalSent int64
	for w := 0; w < workers; w++ {
		select {
		case err := <-errCh:
			return Result{}, err
		case sent := <-doneCh:
			totalSent += sent
		}
	}

	// Gather: copy strips back into the caller's grid.
	for _, st := range states {
		for li := 0; li < st.band.Rows; li++ {
			for j := 0; j < n; j++ {
				u.Set(st.band.Row0+li, j, st.cur.AtRect(li, j))
			}
		}
	}
	return Result{
		Iterations:  iterations,
		Workers:     workers,
		PartitionsX: 1,
		PartitionsY: workers,
		WordsSent:   totalSent,
	}, nil
}

// localGrid wraps a grid.Grid used as a rows×n rectangular subgrid; the
// underlying square grid is n wide and rows tall (rows ≤ n), addressed
// through the same ghost conventions.
type localGrid struct {
	*grid.Grid
	rows int
}

func newLocal(rows, n, halo int) (*localGrid, error) {
	g, err := grid.NewHalo(n, halo) // width n; only the first `rows` rows used
	if err != nil {
		return nil, err
	}
	return &localGrid{Grid: g, rows: rows}, nil
}

// SetRect/AtRect address the rectangular view (row may extend into the
// halo on either side).
func (l *localGrid) SetRect(i, j int, v float64) { l.Grid.Set(i, j, v) }
func (l *localGrid) AtRect(i, j int) float64     { return l.Grid.At(i, j) }

// extractRows copies `count` interior rows starting at r0 (local
// coordinates), full width plus column halo, for shipment to a neighbor.
func extractRows(g *localGrid, r0, count, n int) [][]float64 {
	out := make([][]float64, count)
	for r := 0; r < count; r++ {
		row := make([]float64, n+2*g.Halo)
		for j := -g.Halo; j < n+g.Halo; j++ {
			row[j+g.Halo] = g.AtRect(r0+r, j)
		}
		out[r] = row
	}
	return out
}

// storeRow writes a shipped row into local row i (typically a halo row).
func storeRow(g *localGrid, i int, row []float64) {
	for idx, v := range row {
		g.SetRect(i, idx-g.Halo, v)
	}
}

// rhsGrid unwraps the optional local RHS.
func rhsGrid(l *localGrid) *grid.Grid {
	if l == nil {
		return nil
	}
	return l.Grid
}
