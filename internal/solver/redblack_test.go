package solver

import (
	"math"
	"testing"

	"optspeed/internal/grid"
)

// TestRedBlackParallelMatchesSerial: the color barriers make the
// parallel red-black sweep bit-identical to the 1-worker one.
func TestRedBlackParallelMatchesSerial(t *testing.T) {
	n := 33
	for _, workers := range []int{2, 3, 4, 8} {
		uSerial, k, f := testProblem(n)
		if _, err := SolveRedBlack(uSerial, k, f, RedBlackConfig{Workers: 1, MaxIterations: 40}); err != nil {
			t.Fatal(err)
		}
		uPar, _, _ := testProblem(n)
		if _, err := SolveRedBlack(uPar, k, f, RedBlackConfig{Workers: workers, MaxIterations: 40}); err != nil {
			t.Fatal(err)
		}
		if d := uSerial.MaxAbsDiff(uPar); d != 0 {
			t.Errorf("workers=%d: diff %g", workers, d)
		}
	}
}

// TestRedBlackConvergesFasterThanJacobi: per iteration, red-black
// Gauss-Seidel reduces error roughly twice as fast.
func TestRedBlackConvergesFasterThanJacobi(t *testing.T) {
	n := 24
	const iters = 200
	exact := func(u *grid.Grid) float64 {
		h := 1 / float64(n+1)
		m, _ := grid.ErrorAgainst(u, func(i, j int) float64 {
			x, y := float64(i+1)*h, float64(j+1)*h
			return math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
		})
		return m
	}
	uJac, k, f := testProblem(n)
	if _, err := Solve(uJac, k, f, Config{Workers: 2, MaxIterations: iters}); err != nil {
		t.Fatal(err)
	}
	uRB, _, _ := testProblem(n)
	if _, err := SolveRedBlack(uRB, k, f, RedBlackConfig{Workers: 2, MaxIterations: iters}); err != nil {
		t.Fatal(err)
	}
	if exact(uRB) >= exact(uJac) {
		t.Errorf("red-black error %g not below Jacobi %g", exact(uRB), exact(uJac))
	}
}

// TestRedBlackSORConverges: over-relaxation reaches the tolerance in far
// fewer iterations than plain Gauss-Seidel on the model problem.
func TestRedBlackSORConverges(t *testing.T) {
	n := 32
	// Optimal SOR omega for the model problem ≈ 2/(1+sin(πh)).
	h := 1 / float64(n+1)
	omega := 2 / (1 + math.Sin(math.Pi*h))

	uGS, k, f := testProblem(n)
	gs, err := SolveRedBlack(uGS, k, f, RedBlackConfig{
		Workers: 2, MaxIterations: 20000, Tolerance: 1e-18,
	})
	if err != nil {
		t.Fatal(err)
	}
	uSOR, _, _ := testProblem(n)
	sor, err := SolveRedBlack(uSOR, k, f, RedBlackConfig{
		Workers: 2, MaxIterations: 20000, Tolerance: 1e-18, Omega: omega,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !gs.Converged || !sor.Converged {
		t.Fatalf("not converged: gs=%v sor=%v", gs.Converged, sor.Converged)
	}
	if sor.Iterations >= gs.Iterations/2 {
		t.Errorf("SOR iterations %d not well below GS %d", sor.Iterations, gs.Iterations)
	}
}

func TestRedBlackValidation(t *testing.T) {
	u, k, f := testProblem(16)
	if _, err := SolveRedBlack(nil, k, f, RedBlackConfig{}); err == nil {
		t.Error("nil grid accepted")
	}
	if _, err := SolveRedBlack(u, grid.Star9(16), f, RedBlackConfig{MaxIterations: 1}); err == nil {
		t.Error("radius-2 stencil accepted")
	}
	if _, err := SolveRedBlack(u, grid.Laplace9(16), f, RedBlackConfig{MaxIterations: 1}); err == nil {
		t.Error("diagonal stencil accepted")
	}
	if _, err := SolveRedBlack(u, k, f, RedBlackConfig{Omega: 2.5, MaxIterations: 1}); err == nil {
		t.Error("omega ≥ 2 accepted")
	}
	if _, err := SolveRedBlack(u, k, f, RedBlackConfig{Omega: -1, MaxIterations: 1}); err == nil {
		t.Error("negative omega accepted")
	}
}

// TestDistributedWordCount: the instrumented message-passing solver
// ships exactly the model's volume — 2·(workers−1) boundary exchanges of
// halo rows per iteration (each internal boundary crossed once in each
// direction).
func TestDistributedWordCount(t *testing.T) {
	n := 32
	for _, workers := range []int{2, 4, 8} {
		u := grid.MustNew(n)
		u.SetConstantBoundary(1)
		k := grid.Laplace5(n)
		const iters = 7
		res, err := DistributedSolve(u, k, nil, workers, iters)
		if err != nil {
			t.Fatal(err)
		}
		halo := k.Stencil.RowRadius()
		rowWords := int64(n + 2*u.Halo)
		want := int64(iters) * 2 * int64(res.Workers-1) * int64(halo) * rowWords
		if res.WordsSent != want {
			t.Errorf("workers=%d: WordsSent=%d, want %d", workers, res.WordsSent, want)
		}
	}
}

// TestResidualDecreases: the fixed-point residual decreases across
// solver iterations.
func TestResidualDecreases(t *testing.T) {
	n := 24
	u, k, f := testProblem(n)
	max0, l20, err := grid.Residual(u, k, f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(u, k, f, Config{Workers: 2, MaxIterations: 200}); err != nil {
		t.Fatal(err)
	}
	max1, l21, err := grid.Residual(u, k, f)
	if err != nil {
		t.Fatal(err)
	}
	if !(max1 < max0 && l21 < l20) {
		t.Errorf("residuals did not decrease: (%g,%g) → (%g,%g)", max0, l20, max1, l21)
	}
	if err := u.CheckFinite(); err != nil {
		t.Error(err)
	}
}
