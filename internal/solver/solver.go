// Package solver is a real shared-memory parallel Jacobi solver built on
// goroutines: the empirical counterpart to the paper's analytic model
// (the paper's §8 lists empirical verification as future work; the repro
// band calls for goroutine benchmarks). It decomposes the grid into
// strips or near-square blocks, one worker goroutine per partition,
// iterates with barrier-synchronized Jacobi sweeps, and supports the
// convergence-check schedules whose cost the paper discusses (§4).
//
// Because Jacobi reads only the previous iterate, the parallel solver is
// bit-identical to the serial one for every decomposition — a property
// the tests assert.
package solver

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"optspeed/internal/grid"
	"optspeed/internal/partition"
)

// Decomposition selects the partition geometry for the parallel solve.
type Decomposition int

const (
	// Strips assigns each worker a band of contiguous rows (paper Fig. 4).
	Strips Decomposition = iota
	// Blocks assigns each worker a near-square rectangle from a
	// grid-of-blocks decomposition (paper Fig. 5).
	Blocks
)

// String names the decomposition.
func (d Decomposition) String() string {
	switch d {
	case Strips:
		return "strips"
	case Blocks:
		return "blocks"
	default:
		return fmt.Sprintf("Decomposition(%d)", int(d))
	}
}

// Config configures a parallel solve.
type Config struct {
	Workers       int           // goroutines; 0 = GOMAXPROCS
	Decomposition Decomposition // strips (default) or blocks
	MaxIterations int           // hard iteration cap; 0 = 10000
	Tolerance     float64       // stop when global Σ(Δu)² < Tolerance; 0 = run to MaxIterations
	Check         Schedule      // convergence-check schedule; nil = EveryIteration
	Profile       bool          // measure per-phase times (adds clock reads)
}

// Result reports a completed solve.
type Result struct {
	Iterations  int     // iterations executed
	Converged   bool    // tolerance reached (false when run to the cap)
	FinalDelta  float64 // last measured global Σ(Δu)²
	Checks      int     // convergence checks performed
	Workers     int     // workers actually used
	PartitionsX int     // block columns (1 for strips)
	PartitionsY int     // block rows (= workers for strips)
	WordsSent   int64   // halo words shipped over channels (message-passing solver only)

	// Profiling (populated when Config.Profile is set): total worker
	// seconds spent sweeping versus waiting at the iteration barrier.
	// The barrier share is the real-machine analogue of the model's
	// synchronization overhead — it grows with worker count and with
	// load imbalance.
	ComputeSeconds float64
	BarrierSeconds float64
}

// region is one worker's responsibility.
type region struct {
	r0, r1, c0, c1 int
}

func (r region) area() int { return (r.r1 - r.r0) * (r.c1 - r.c0) }

// Solve runs barrier-synchronized parallel Jacobi: dst/src double
// buffering, one worker per partition, a convergence check (global sum
// of squared updates) on the schedule's iterations. u is updated in
// place with the final iterate; f is the optional source term (may be
// nil).
func Solve(u *grid.Grid, k grid.Kernel, f *grid.Grid, cfg Config) (Result, error) {
	if u == nil {
		return Result{}, fmt.Errorf("solver: nil grid")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > u.N {
		workers = u.N // at least one row per strip
	}
	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = 10000
	}
	sched := cfg.Check
	if sched == nil {
		sched = EveryIteration{}
	}

	regions, px, py, err := decompose(u.N, workers, cfg.Decomposition)
	if err != nil {
		return Result{}, err
	}
	workers = len(regions)

	cur := u
	next := u.Clone()

	var (
		wg         sync.WaitGroup
		deltas     = make([]float64, workers)
		sweepSecs  = make([]float64, workers)
		iterations int
		checks     int
		converged  bool
		finalDelta float64
		sweepErr   error
		errOnce    sync.Once
		computeSum float64
		barrierSum float64
	)

	// Persistent row-banded workers: one goroutine per partition for the
	// whole solve, fed one job per iteration over a buffered channel and
	// joined at the WaitGroup barrier — instead of spawning workers×
	// iterations goroutines. The convergence-check iterations use the
	// fused sweep+reduction (SweepRegionDelta), so the Σ(Δu)² statistic
	// costs no second pass over the partition's memory.
	type sweepJob struct {
		cur, next *grid.Grid
		collect   bool
	}
	jobs := make([]chan sweepJob, workers)
	for w := 0; w < workers; w++ {
		jobs[w] = make(chan sweepJob, 1)
		go func(w int) {
			reg := regions[w]
			for job := range jobs[w] {
				var t0 time.Time
				if cfg.Profile {
					t0 = time.Now()
				}
				if job.collect {
					d, err := grid.SweepRegionDelta(job.next, job.cur, k, f, reg.r0, reg.r1, reg.c0, reg.c1)
					if err != nil {
						errOnce.Do(func() { sweepErr = err })
					} else {
						deltas[w] = d
					}
				} else if err := grid.SweepRegion(job.next, job.cur, k, f, reg.r0, reg.r1, reg.c0, reg.c1); err != nil {
					errOnce.Do(func() { sweepErr = err })
				}
				if cfg.Profile {
					sweepSecs[w] = time.Since(t0).Seconds()
				}
				wg.Done()
			}
		}(w)
	}
	defer func() {
		for _, ch := range jobs {
			close(ch)
		}
	}()

	for iter := 1; iter <= maxIter; iter++ {
		doCheck := cfg.Tolerance > 0 && sched.CheckAt(iter)
		var iterStart time.Time
		if cfg.Profile {
			iterStart = time.Now()
		}
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			jobs[w] <- sweepJob{cur: cur, next: next, collect: doCheck}
		}
		wg.Wait() // barrier: iteration ends before the next begins (paper §3)
		if sweepErr != nil {
			return Result{}, sweepErr
		}
		if cfg.Profile {
			wall := time.Since(iterStart).Seconds()
			for _, sw := range sweepSecs {
				computeSum += sw
				if gap := wall - sw; gap > 0 {
					barrierSum += gap
				}
			}
		}
		iterations = iter
		cur, next = next, cur
		if doCheck {
			checks++
			var sum float64
			for _, d := range deltas {
				sum += d // the "dissemination" reduction (paper §4)
			}
			finalDelta = sum
			if sum < cfg.Tolerance {
				converged = true
				break
			}
		}
	}

	// Ensure the caller's grid holds the final iterate.
	if cur != u {
		if err := u.CopyFrom(cur); err != nil {
			return Result{}, err
		}
	}
	return Result{
		Iterations:     iterations,
		Converged:      converged,
		FinalDelta:     finalDelta,
		Checks:         checks,
		Workers:        workers,
		PartitionsX:    px,
		PartitionsY:    py,
		ComputeSeconds: computeSum,
		BarrierSeconds: barrierSum,
	}, nil
}

// SolveSerial is the single-threaded baseline: identical numerics, no
// goroutines, checking convergence every iteration.
func SolveSerial(u *grid.Grid, k grid.Kernel, f *grid.Grid, maxIter int, tol float64) (Result, error) {
	return Solve(u, k, f, Config{
		Workers:       1,
		MaxIterations: maxIter,
		Tolerance:     tol,
	})
}

// decompose builds the worker regions: strips via the paper's ±1-row
// rule, blocks via a near-square processor grid.
func decompose(n, workers int, d Decomposition) ([]region, int, int, error) {
	switch d {
	case Strips:
		bands, err := partition.DecomposeStrips(n, workers)
		if err != nil {
			return nil, 0, 0, err
		}
		regions := make([]region, len(bands))
		for i, b := range bands {
			regions[i] = region{r0: b.Row0, r1: b.Row0 + b.Rows, c0: 0, c1: n}
		}
		return regions, 1, len(bands), nil
	case Blocks:
		py, px := blockGrid(workers)
		rows, err := partition.DecomposeStrips(n, py)
		if err != nil {
			return nil, 0, 0, err
		}
		var regions []region
		for _, b := range rows {
			colBands, err := partition.DecomposeStrips(n, px)
			if err != nil {
				return nil, 0, 0, err
			}
			for _, cb := range colBands {
				regions = append(regions, region{
					r0: b.Row0, r1: b.Row0 + b.Rows,
					c0: cb.Row0, c1: cb.Row0 + cb.Rows,
				})
			}
		}
		return regions, px, py, nil
	default:
		return nil, 0, 0, fmt.Errorf("solver: unknown decomposition %d", int(d))
	}
}

// blockGrid factors the worker count into the most square py×px grid
// (py ≥ px, py·px = workers).
func blockGrid(workers int) (py, px int) {
	px = 1
	for d := 1; d*d <= workers; d++ {
		if workers%d == 0 {
			px = d
		}
	}
	return workers / px, px
}
