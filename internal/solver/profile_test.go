package solver

import "testing"

// TestProfileFields: profiling populates compute/barrier seconds; off by
// default.
func TestProfileFields(t *testing.T) {
	u, k, f := testProblem(128)
	res, err := Solve(u, k, f, Config{Workers: 4, MaxIterations: 20, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ComputeSeconds <= 0 {
		t.Errorf("ComputeSeconds = %g", res.ComputeSeconds)
	}
	if res.BarrierSeconds < 0 {
		t.Errorf("BarrierSeconds = %g", res.BarrierSeconds)
	}
	u2, k2, f2 := testProblem(128)
	res2, err := Solve(u2, k2, f2, Config{Workers: 4, MaxIterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res2.ComputeSeconds != 0 || res2.BarrierSeconds != 0 {
		t.Error("profiling fields populated without Profile")
	}
}

// TestProfileComputeDominatesSerial: with one worker there is no
// imbalance, so compute dominates the measured time.
func TestProfileComputeDominatesSerial(t *testing.T) {
	u, k, f := testProblem(256)
	res, err := Solve(u, k, f, Config{Workers: 1, MaxIterations: 10, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	total := res.ComputeSeconds + res.BarrierSeconds
	if total <= 0 {
		t.Fatal("no profile data")
	}
	if frac := res.ComputeSeconds / total; frac < 0.5 {
		t.Errorf("serial compute fraction %.2f, want > 0.5", frac)
	}
}
