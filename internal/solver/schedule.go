package solver

import "fmt"

// Schedule decides on which iterations a (relatively expensive) global
// convergence check runs. The paper (§4) notes that convergence checking
// can add ~50% to the update computation for small stencils and that its
// dissemination traffic is non-local; Saltz, Naik, and Nicol [13] show
// scheduled checks reduce the cost "to an insignificant amount". These
// schedules reproduce the idea at the level the paper uses it.
type Schedule interface {
	// CheckAt reports whether iteration iter (1-based) should check.
	CheckAt(iter int) bool
	// Name identifies the schedule for reporting.
	Name() string
}

// EveryIteration checks on every iteration: the maximally responsive,
// maximally expensive baseline.
type EveryIteration struct{}

// CheckAt implements Schedule.
func (EveryIteration) CheckAt(int) bool { return true }

// Name implements Schedule.
func (EveryIteration) Name() string { return "every-iteration" }

// EveryK checks on every K-th iteration: the fixed-period schedule. It
// overshoots convergence by up to K−1 iterations but divides the
// checking cost by K.
type EveryK struct{ K int }

// CheckAt implements Schedule.
func (s EveryK) CheckAt(iter int) bool {
	k := s.K
	if k < 1 {
		k = 1
	}
	return iter%k == 0
}

// Name implements Schedule.
func (s EveryK) Name() string { return fmt.Sprintf("every-%d", s.K) }

// Geometric checks at iterations ⌈Start·Ratio^j⌉: sparse early (when the
// iterate is far from converged and checks cannot succeed), dense
// late — the shape of the Saltz-Naik-Nicol adaptive schedules.
type Geometric struct {
	Start float64 // first checked iteration (≥ 1)
	Ratio float64 // growth factor (> 1)

	next float64
}

// NewGeometric builds a geometric schedule with validation.
func NewGeometric(start, ratio float64) (*Geometric, error) {
	if start < 1 {
		return nil, fmt.Errorf("solver: geometric start %g must be ≥ 1", start)
	}
	if ratio <= 1 {
		return nil, fmt.Errorf("solver: geometric ratio %g must be > 1", ratio)
	}
	return &Geometric{Start: start, Ratio: ratio, next: start}, nil
}

// CheckAt implements Schedule. It must be called with increasing iter
// (the solver guarantees this).
func (g *Geometric) CheckAt(iter int) bool {
	if g.next < 1 {
		g.next = g.Start
		if g.next < 1 {
			g.next = 1
		}
	}
	if float64(iter) < g.next {
		return false
	}
	for g.next <= float64(iter) {
		g.next *= g.Ratio
	}
	return true
}

// Name implements Schedule.
func (g *Geometric) Name() string {
	return fmt.Sprintf("geometric(%g,%g)", g.Start, g.Ratio)
}

// CheckCost estimates the fraction of total work spent on convergence
// checking under a schedule, given the per-iteration check/update cost
// ratio r (the paper cites r ≈ 0.5 for 5-point stencils): it simulates
// iters iterations and returns checks·r / (iters·(1+r·checks/iters)) —
// i.e. the share of checking in the total.
func CheckCost(s Schedule, iters int, r float64) float64 {
	checks := 0
	for i := 1; i <= iters; i++ {
		if s.CheckAt(i) {
			checks++
		}
	}
	checkWork := float64(checks) * r
	total := float64(iters) + checkWork
	return checkWork / total
}
