package solver

import (
	"testing"

	"optspeed/internal/grid"
)

// TestDistBlocksMatchesShared: the 2-D block message-passing solver is
// bit-identical to the shared-memory solver, including for the diagonal
// 9-point stencil (corners propagate via the two-phase exchange).
func TestDistBlocksMatchesShared(t *testing.T) {
	n := 36
	kernels := []grid.Kernel{grid.Laplace5(n), grid.Laplace9(n), grid.Star9(n)}
	grids := [][2]int{{1, 1}, {2, 2}, {2, 3}, {3, 3}, {4, 2}}
	for _, k := range kernels {
		for _, wg := range grids {
			uShared := grid.MustNew(n)
			uShared.SetConstantBoundary(1)
			if _, err := Solve(uShared, k, nil, Config{Workers: 1, MaxIterations: 20}); err != nil {
				t.Fatal(err)
			}
			uDist := grid.MustNew(n)
			uDist.SetConstantBoundary(1)
			res, err := DistributedSolveBlocks(uDist, k, nil, wg[0], wg[1], 20)
			if err != nil {
				t.Fatal(err)
			}
			if d := uShared.MaxAbsDiff(uDist); d != 0 {
				t.Errorf("%s %dx%d workers: diff %g", k.Stencil.Name(), wg[0], wg[1], d)
			}
			if res.PartitionsY*res.PartitionsX != res.Workers {
				t.Errorf("worker accounting: %+v", res)
			}
		}
	}
}

// TestDistBlocksWithRHS: source terms scatter correctly.
func TestDistBlocksWithRHS(t *testing.T) {
	n := 30
	uShared, k, f := testProblem(n)
	if _, err := Solve(uShared, k, f, Config{Workers: 1, MaxIterations: 30}); err != nil {
		t.Fatal(err)
	}
	uDist, _, f2 := testProblem(n)
	if _, err := DistributedSolveBlocks(uDist, k, f2, 3, 2, 30); err != nil {
		t.Fatal(err)
	}
	if d := uShared.MaxAbsDiff(uDist); d != 0 {
		t.Errorf("RHS block diff %g", d)
	}
}

// TestDistBlocksWordCount: the shipped volume matches the model — each
// internal vertical edge carries halo·(cols+2·halo) words per direction
// per iteration, each horizontal edge halo·(rows+2·halo).
func TestDistBlocksWordCount(t *testing.T) {
	n := 32
	k := grid.Laplace5(n)
	u := grid.MustNew(n)
	const iters = 5
	res, err := DistributedSolveBlocks(u, k, nil, 2, 2, iters)
	if err != nil {
		t.Fatal(err)
	}
	halo := 1
	// 2×2 grid of 16×16 blocks: 2 vertical edges, 2 horizontal edges,
	// 2 directions each.
	perIter := int64(2*2*halo*(16+2*u.Halo) + 2*2*halo*(16+2*u.Halo))
	if want := perIter * iters; res.WordsSent != want {
		t.Errorf("WordsSent = %d, want %d", res.WordsSent, want)
	}
}

// TestDistBlocksSquareVolumeBeatsStrips: at equal worker counts the
// block decomposition ships fewer words than strips — the paper's
// perimeter argument measured on real message traffic.
func TestDistBlocksSquareVolumeBeatsStrips(t *testing.T) {
	n := 64
	k := grid.Laplace5(n)
	const workers = 16
	const iters = 3
	uStrips := grid.MustNew(n)
	strips, err := DistributedSolve(uStrips, k, nil, workers, iters)
	if err != nil {
		t.Fatal(err)
	}
	uBlocks := grid.MustNew(n)
	blocks, err := DistributedSolveBlocks(uBlocks, k, nil, 4, 4, iters)
	if err != nil {
		t.Fatal(err)
	}
	if blocks.WordsSent >= strips.WordsSent {
		t.Errorf("blocks shipped %d words, strips %d — expected fewer",
			blocks.WordsSent, strips.WordsSent)
	}
}

func TestDistBlocksValidation(t *testing.T) {
	u := grid.MustNew(16)
	k := grid.Laplace5(16)
	if _, err := DistributedSolveBlocks(nil, k, nil, 2, 2, 1); err == nil {
		t.Error("nil grid accepted")
	}
	if _, err := DistributedSolveBlocks(u, k, nil, 2, 2, -1); err == nil {
		t.Error("negative iterations accepted")
	}
	if _, err := DistributedSolveBlocks(u, k, nil, 0, 2, 1); err == nil {
		t.Error("py=0 accepted")
	}
	thin, _ := grid.NewHalo(16, 1)
	if _, err := DistributedSolveBlocks(thin, grid.Star9(16), nil, 2, 2, 1); err == nil {
		t.Error("stencil radius exceeding halo accepted")
	}
	// Oversized worker grids clamp rather than fail.
	res, err := DistributedSolveBlocks(u, k, nil, 100, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.PartitionsY > 16 || res.PartitionsX > 16 {
		t.Errorf("clamping failed: %+v", res)
	}
}
