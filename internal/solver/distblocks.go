package solver

import (
	"fmt"

	"optspeed/internal/grid"
	"optspeed/internal/partition"
)

// DistributedSolveBlocks runs the square-partition Jacobi iteration in
// message-passing style: a py×px grid of workers, each owning a private
// block plus halo, exchanging boundary values with its four neighbors
// over channels — the code path of the paper's square decomposition on
// a hypercube or mesh (§4).
//
// The halo exchange is two-phase: vertical neighbors first exchange
// boundary rows spanning the full local width including column halos;
// horizontal neighbors then exchange boundary columns spanning the full
// local height including the freshly filled halo rows. Corner values
// therefore propagate through two hops, which is exactly what diagonal
// stencils (the 9-point box) need; no diagonal channels exist, matching
// the machines the paper considers.
//
// Results are bit-identical to the shared-memory solver.
func DistributedSolveBlocks(u *grid.Grid, k grid.Kernel, f *grid.Grid, py, px, iterations int) (Result, error) {
	if u == nil {
		return Result{}, fmt.Errorf("solver: nil grid")
	}
	if iterations < 0 {
		return Result{}, fmt.Errorf("solver: negative iterations %d", iterations)
	}
	halo := k.Stencil.ChebyshevRadius()
	if halo > u.Halo {
		return Result{}, fmt.Errorf("solver: stencil radius %d exceeds grid halo %d", halo, u.Halo)
	}
	if py < 1 || px < 1 {
		return Result{}, fmt.Errorf("solver: worker grid %dx%d invalid", py, px)
	}
	n := u.N
	clamp := func(v int) int {
		if halo > 0 && v > n/halo {
			v = n / halo
		}
		if v > n {
			v = n
		}
		if v < 1 {
			v = 1
		}
		return v
	}
	py, px = clamp(py), clamp(px)

	rowBands, err := partition.DecomposeStrips(n, py)
	if err != nil {
		return Result{}, err
	}
	colBands, err := partition.DecomposeStrips(n, px)
	if err != nil {
		return Result{}, err
	}

	type wstate struct {
		rows, cols int // block extent
		row0, col0 int // global origin
		cur, nxt   *grid.Grid
		rhs        *grid.Grid
		maxDim     int
	}
	workers := py * px
	states := make([]*wstate, workers)
	for r := 0; r < py; r++ {
		for c := 0; c < px; c++ {
			rb, cb := rowBands[r], colBands[c]
			dim := rb.Rows
			if cb.Rows > dim {
				dim = cb.Rows
			}
			local, err := grid.NewHalo(dim, u.Halo)
			if err != nil {
				return Result{}, err
			}
			localNext, err := grid.NewHalo(dim, u.Halo)
			if err != nil {
				return Result{}, err
			}
			var localRHS *grid.Grid
			if f != nil {
				localRHS, err = grid.NewHalo(dim, u.Halo)
				if err != nil {
					return Result{}, err
				}
			}
			st := &wstate{
				rows: rb.Rows, cols: cb.Rows,
				row0: rb.Row0, col0: cb.Row0,
				cur: local, nxt: localNext, rhs: localRHS,
				maxDim: dim,
			}
			// Scatter: block plus full halo ring from the global grid.
			for li := -u.Halo; li < st.rows+u.Halo; li++ {
				for lj := -u.Halo; lj < st.cols+u.Halo; lj++ {
					v := u.At(st.row0+li, st.col0+lj)
					st.cur.Set(li, lj, v)
					st.nxt.Set(li, lj, v)
					gi, gj := st.row0+li, st.col0+lj
					if localRHS != nil && gi >= 0 && gi < n && gj >= 0 && gj < n &&
						li >= 0 && li < st.rows && lj >= 0 && lj < st.cols {
						localRHS.Set(li, lj, f.At(gi, gj))
					}
				}
			}
			states[r*px+c] = st
		}
	}

	// Channels: one per directed edge. rows[r][c] between (r,c) and
	// (r+1,c); cols between (r,c) and (r,c+1).
	type slab [][]float64
	downCh := make([]chan slab, (py-1)*px) // (r,c) → (r+1,c)
	upCh := make([]chan slab, (py-1)*px)
	rightCh := make([]chan slab, py*(px-1)) // (r,c) → (r,c+1)
	leftCh := make([]chan slab, py*(px-1))
	for i := range downCh {
		downCh[i] = make(chan slab, 1)
		upCh[i] = make(chan slab, 1)
	}
	for i := range rightCh {
		rightCh[i] = make(chan slab, 1)
		leftCh[i] = make(chan slab, 1)
	}
	vEdge := func(r, c int) int { return r*px + c }     // edge (r,c)-(r+1,c)
	hEdge := func(r, c int) int { return r*(px-1) + c } // edge (r,c)-(r,c+1)

	// copyRows extracts `count` rows starting at local row r0, columns
	// [-haloW, cols+haloW).
	copyRows := func(st *wstate, r0, count int) slab {
		out := make(slab, count)
		for i := 0; i < count; i++ {
			row := make([]float64, st.cols+2*u.Halo)
			for j := -u.Halo; j < st.cols+u.Halo; j++ {
				row[j+u.Halo] = st.cur.At(r0+i, j)
			}
			out[i] = row
		}
		return out
	}
	pasteRows := func(st *wstate, r0 int, data slab) {
		for i, row := range data {
			for idx, v := range row {
				st.cur.Set(r0+i, idx-u.Halo, v)
			}
		}
	}
	copyCols := func(st *wstate, c0, count int) slab {
		out := make(slab, count)
		for j := 0; j < count; j++ {
			col := make([]float64, st.rows+2*u.Halo)
			for i := -u.Halo; i < st.rows+u.Halo; i++ {
				col[i+u.Halo] = st.cur.At(i, c0+j)
			}
			out[j] = col
		}
		return out
	}
	pasteCols := func(st *wstate, c0 int, data slab) {
		for j, col := range data {
			for idx, v := range col {
				st.cur.Set(idx-u.Halo, c0+j, v)
			}
		}
	}

	errCh := make(chan error, workers)
	doneCh := make(chan int64, workers)
	for r := 0; r < py; r++ {
		for c := 0; c < px; c++ {
			go func(r, c int) {
				st := states[r*px+c]
				var sent int64
				for iter := 0; iter < iterations; iter++ {
					// Phase 1: vertical exchange (full width + col halos).
					if r > 0 {
						upCh[vEdge(r-1, c)] <- copyRows(st, 0, halo)
						sent += int64(halo) * int64(st.cols+2*u.Halo)
					}
					if r < py-1 {
						downCh[vEdge(r, c)] <- copyRows(st, st.rows-halo, halo)
						sent += int64(halo) * int64(st.cols+2*u.Halo)
					}
					if r > 0 {
						pasteRows(st, -halo, <-downCh[vEdge(r-1, c)])
					}
					if r < py-1 {
						pasteRows(st, st.rows, <-upCh[vEdge(r, c)])
					}
					// Phase 2: horizontal exchange (full height + fresh row halos).
					if c > 0 {
						leftCh[hEdge(r, c-1)] <- copyCols(st, 0, halo)
						sent += int64(halo) * int64(st.rows+2*u.Halo)
					}
					if c < px-1 {
						rightCh[hEdge(r, c)] <- copyCols(st, st.cols-halo, halo)
						sent += int64(halo) * int64(st.rows+2*u.Halo)
					}
					if c > 0 {
						pasteCols(st, -halo, <-rightCh[hEdge(r, c-1)])
					}
					if c < px-1 {
						pasteCols(st, st.cols, <-leftCh[hEdge(r, c)])
					}
					// Local sweep.
					if err := grid.SweepRegion(st.nxt, st.cur, k, st.rhs, 0, st.rows, 0, st.cols); err != nil {
						errCh <- err
						return
					}
					st.cur, st.nxt = st.nxt, st.cur
				}
				doneCh <- sent
			}(r, c)
		}
	}
	var totalSent int64
	for w := 0; w < workers; w++ {
		select {
		case err := <-errCh:
			return Result{}, err
		case s := <-doneCh:
			totalSent += s
		}
	}

	// Gather.
	for _, st := range states {
		for li := 0; li < st.rows; li++ {
			for lj := 0; lj < st.cols; lj++ {
				u.Set(st.row0+li, st.col0+lj, st.cur.At(li, lj))
			}
		}
	}
	return Result{
		Iterations:  iterations,
		Workers:     workers,
		PartitionsX: px,
		PartitionsY: py,
		WordsSent:   totalSent,
	}, nil
}
