package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"optspeed/internal/grid"
	"optspeed/internal/stencil"
)

// testProblem builds a Poisson problem with a manufactured solution.
func testProblem(n int) (*grid.Grid, grid.Kernel, *grid.Grid) {
	k := grid.Laplace5(n)
	h := 1 / float64(n+1)
	f := grid.MustNew(n)
	f.FillFunc(func(i, j int) float64 {
		x := float64(i+1) * h
		y := float64(j+1) * h
		return 2 * math.Pi * math.Pi * math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
	})
	u := grid.MustNew(n)
	return u, k, f
}

// TestParallelMatchesSerialBitExact: Jacobi depends only on the previous
// iterate, so any decomposition must produce bit-identical grids.
func TestParallelMatchesSerialBitExact(t *testing.T) {
	n := 33
	for _, d := range []Decomposition{Strips, Blocks} {
		for _, workers := range []int{2, 3, 4, 7, 8, 16} {
			uSerial, k, f := testProblem(n)
			if _, err := Solve(uSerial, k, f, Config{Workers: 1, MaxIterations: 60}); err != nil {
				t.Fatal(err)
			}
			uPar, _, _ := testProblem(n)
			res, err := Solve(uPar, k, f, Config{Workers: workers, Decomposition: d, MaxIterations: 60})
			if err != nil {
				t.Fatal(err)
			}
			if res.Workers < 1 {
				t.Fatalf("workers = %d", res.Workers)
			}
			if diff := uSerial.MaxAbsDiff(uPar); diff != 0 {
				t.Errorf("%s workers=%d: max diff %g, want bit-identical", d, workers, diff)
			}
		}
	}
}

// TestDistributedMatchesShared: the channel-based message-passing solver
// agrees bit-exactly with the shared-memory solver.
func TestDistributedMatchesShared(t *testing.T) {
	n := 32
	for _, st := range []stencil.Stencil{stencil.FivePoint, stencil.NineStar} {
		var k grid.Kernel
		switch st.Name() {
		case "5-point":
			k = grid.Laplace5(n)
		default:
			k = grid.Star9(n)
		}
		for _, workers := range []int{1, 2, 4, 7} {
			uShared := grid.MustNew(n)
			uShared.SetConstantBoundary(1)
			if _, err := Solve(uShared, k, nil, Config{Workers: 1, MaxIterations: 25}); err != nil {
				t.Fatal(err)
			}
			uDist := grid.MustNew(n)
			uDist.SetConstantBoundary(1)
			res, err := DistributedSolve(uDist, k, nil, workers, 25)
			if err != nil {
				t.Fatal(err)
			}
			if diff := uShared.MaxAbsDiff(uDist); diff != 0 {
				t.Errorf("%s workers=%d (used %d): max diff %g",
					st.Name(), workers, res.Workers, diff)
			}
		}
	}
}

// TestDistributedWithRHS: the message-passing solver carries the source
// term correctly.
func TestDistributedWithRHS(t *testing.T) {
	n := 24
	uShared, k, f := testProblem(n)
	if _, err := Solve(uShared, k, f, Config{Workers: 1, MaxIterations: 40}); err != nil {
		t.Fatal(err)
	}
	uDist, _, f2 := testProblem(n)
	if _, err := DistributedSolve(uDist, k, f2, 4, 40); err != nil {
		t.Fatal(err)
	}
	if diff := uShared.MaxAbsDiff(uDist); diff != 0 {
		t.Errorf("RHS distributed diff %g", diff)
	}
}

// TestConvergence: the solver converges on the manufactured Poisson
// problem and reports it.
func TestConvergence(t *testing.T) {
	n := 24
	u, k, f := testProblem(n)
	res, err := Solve(u, k, f, Config{
		Workers:       4,
		MaxIterations: 20000,
		Tolerance:     1e-16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if res.FinalDelta >= 1e-16 {
		t.Errorf("final delta %g", res.FinalDelta)
	}
	// Solution matches the manufactured answer to discretization error.
	h := 1 / float64(n+1)
	var maxErr float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x, y := float64(i+1)*h, float64(j+1)*h
			exact := math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
			maxErr = math.Max(maxErr, math.Abs(u.At(i, j)-exact))
		}
	}
	if maxErr > 5*h*h*math.Pi*math.Pi {
		t.Errorf("solution error %g too large", maxErr)
	}
}

// TestScheduleReducesChecks: every-k and geometric schedules perform far
// fewer checks than every-iteration for the same convergence outcome.
func TestScheduleReducesChecks(t *testing.T) {
	n := 24
	run := func(s Schedule) Result {
		u, k, f := testProblem(n)
		res, err := Solve(u, k, f, Config{
			Workers:       2,
			MaxIterations: 20000,
			Tolerance:     1e-14,
			Check:         s,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("schedule %s did not converge", s.Name())
		}
		return res
	}
	every := run(EveryIteration{})
	everyK := run(EveryK{K: 25})
	geo, err := NewGeometric(8, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	geometric := run(geo)

	if everyK.Checks >= every.Checks/10 {
		t.Errorf("every-25 checks %d not ≪ every-iteration %d", everyK.Checks, every.Checks)
	}
	if geometric.Checks >= every.Checks/10 {
		t.Errorf("geometric checks %d not ≪ every-iteration %d", geometric.Checks, every.Checks)
	}
	// Overshoot bounded: every-k converges within K−1 extra iterations.
	if everyK.Iterations > every.Iterations+24 {
		t.Errorf("every-25 overshot: %d vs %d", everyK.Iterations, every.Iterations)
	}
}

// TestScheduleCheckAt: unit behavior of the schedules.
func TestScheduleCheckAt(t *testing.T) {
	if !(EveryIteration{}).CheckAt(1) || !(EveryIteration{}).CheckAt(999) {
		t.Error("EveryIteration missed")
	}
	s := EveryK{K: 5}
	for i := 1; i <= 20; i++ {
		want := i%5 == 0
		if s.CheckAt(i) != want {
			t.Errorf("EveryK(5).CheckAt(%d) = %v", i, !want)
		}
	}
	if (EveryK{K: 0}).CheckAt(1) != true {
		t.Error("EveryK(0) should degrade to every iteration")
	}
	g, err := NewGeometric(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var checked []int
	for i := 1; i <= 40; i++ {
		if g.CheckAt(i) {
			checked = append(checked, i)
		}
	}
	want := []int{4, 8, 16, 32}
	if len(checked) != len(want) {
		t.Fatalf("geometric checked %v, want %v", checked, want)
	}
	for i := range want {
		if checked[i] != want[i] {
			t.Fatalf("geometric checked %v, want %v", checked, want)
		}
	}
}

func TestNewGeometricValidation(t *testing.T) {
	if _, err := NewGeometric(0, 2); err == nil {
		t.Error("start 0 accepted")
	}
	if _, err := NewGeometric(1, 1); err == nil {
		t.Error("ratio 1 accepted")
	}
}

// TestCheckCost: the schedule cost model orders schedules correctly.
func TestCheckCost(t *testing.T) {
	const r = 0.5 // paper: checks ≈ 50% of update work for 5-point
	every := CheckCost(EveryIteration{}, 1000, r)
	if math.Abs(every-1.0/3) > 1e-12 { // 0.5/(1+0.5)
		t.Errorf("every-iteration cost %g, want 1/3", every)
	}
	k10 := CheckCost(EveryK{K: 10}, 1000, r)
	if k10 >= every/5 {
		t.Errorf("every-10 cost %g not ≪ %g", k10, every)
	}
	g, _ := NewGeometric(4, 1.5)
	geo := CheckCost(g, 1000, r)
	if geo >= k10 {
		t.Errorf("geometric cost %g not below every-10 %g", geo, k10)
	}
}

// TestSolveDefaults: zero-value config picks sane defaults.
func TestSolveDefaults(t *testing.T) {
	u, k, f := testProblem(16)
	res, err := Solve(u, k, f, Config{MaxIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers < 1 || res.Iterations != 5 {
		t.Errorf("defaults: %+v", res)
	}
	if res.Converged {
		t.Error("claimed convergence with Tolerance = 0")
	}
}

// TestSolveErrors.
func TestSolveErrors(t *testing.T) {
	if _, err := Solve(nil, grid.Laplace5(8), nil, Config{}); err == nil {
		t.Error("nil grid accepted")
	}
	u := grid.MustNew(8)
	if _, err := Solve(u, grid.Laplace5(8), nil, Config{Decomposition: Decomposition(9), MaxIterations: 1}); err == nil {
		t.Error("bad decomposition accepted")
	}
	if _, err := DistributedSolve(nil, grid.Laplace5(8), nil, 2, 1); err == nil {
		t.Error("distributed nil grid accepted")
	}
	if _, err := DistributedSolve(u, grid.Laplace5(8), nil, 2, -1); err == nil {
		t.Error("negative iterations accepted")
	}
	thin, _ := grid.NewHalo(8, 1)
	if _, err := DistributedSolve(thin, grid.Star9(8), nil, 2, 1); err == nil {
		t.Error("stencil radius exceeding halo accepted")
	}
}

// TestWorkerClamping: more workers than rows clamps to rows.
func TestWorkerClamping(t *testing.T) {
	u, k, f := testProblem(8)
	res, err := Solve(u, k, f, Config{Workers: 64, MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers > 8 {
		t.Errorf("workers %d > rows", res.Workers)
	}
}

// TestBlockGrid: factorization is near-square and exact.
func TestBlockGrid(t *testing.T) {
	cases := map[int][2]int{
		1: {1, 1}, 2: {2, 1}, 4: {2, 2}, 6: {3, 2}, 7: {7, 1},
		12: {4, 3}, 16: {4, 4}, 36: {6, 6},
	}
	for w, want := range cases {
		py, px := blockGrid(w)
		if py != want[0] || px != want[1] {
			t.Errorf("blockGrid(%d) = %d,%d want %d,%d", w, py, px, want[0], want[1])
		}
	}
}

// Property: for random worker counts and decompositions, regions tile
// the grid exactly.
func TestRegionsTileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	f := func() bool {
		n := 4 + rng.Intn(60)
		workers := 1 + rng.Intn(n)
		d := Decomposition(rng.Intn(2))
		regions, px, py, err := decompose(n, workers, d)
		if err != nil {
			return false
		}
		if d == Blocks && px*py != workers {
			return false
		}
		covered := make([]int, n*n)
		for _, r := range regions {
			if r.area() < 1 {
				return false
			}
			for i := r.r0; i < r.r1; i++ {
				for j := r.c0; j < r.c1; j++ {
					covered[i*n+j]++
				}
			}
		}
		for _, c := range covered {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestDecompositionString.
func TestDecompositionString(t *testing.T) {
	if Strips.String() != "strips" || Blocks.String() != "blocks" {
		t.Error("decomposition strings")
	}
	if Decomposition(5).String() == "" {
		t.Error("unknown decomposition string empty")
	}
}
