// Package modassign implements the module-assignment cost model the
// paper's §2 positions itself against: Indurkhya, Stone & Xi-Cheng's
// partitioning of random programs, with Nicol's sharpening (all of
// Indurkhya's conclusions hold rigorously when module execution times
// are constant). A program of M identical modules is split across
// processors; the cost is the bottleneck execution time plus an expected
// communication overhead proportional to the number of cross-processor
// module pairs:
//
//	cost = e·max_p(modules on p) + c·Σ_{p<q} n_p·n_q
//
// Their "somewhat surprising conclusion": the optimal assignment is
// EXTREMAL — either every module on one processor, or modules spread as
// evenly as possible over all available processors. The paper's own
// contribution is precisely that richer cost structures (the bus models
// of §6) break this dichotomy and admit interior optima; this package
// provides the baseline that makes the contrast testable.
package modassign

import "fmt"

// Program is a set of identical modules with pairwise communication.
type Program struct {
	Modules    int     // M: number of modules
	ModuleTime float64 // e: execution time of one module
	CommCost   float64 // c: expected overhead per cross-processor module pair
}

// Validate checks the parameters.
func (p Program) Validate() error {
	if p.Modules < 1 {
		return fmt.Errorf("modassign: modules=%d must be positive", p.Modules)
	}
	if p.ModuleTime <= 0 {
		return fmt.Errorf("modassign: module time %g must be positive", p.ModuleTime)
	}
	if p.CommCost < 0 {
		return fmt.Errorf("modassign: comm cost %g must be non-negative", p.CommCost)
	}
	return nil
}

// Cost evaluates an assignment, given as per-processor module counts
// (zeros allowed). Empty assignments are invalid.
func (p Program) Cost(counts []int) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	total, maxLoad := 0, 0
	for _, n := range counts {
		if n < 0 {
			return 0, fmt.Errorf("modassign: negative count %d", n)
		}
		total += n
		if n > maxLoad {
			maxLoad = n
		}
	}
	if total != p.Modules {
		return 0, fmt.Errorf("modassign: counts sum to %d, want %d", total, p.Modules)
	}
	// Cross pairs: (M² − Σ n_p²)/2.
	sumSq := 0
	for _, n := range counts {
		sumSq += n * n
	}
	crossPairs := float64(p.Modules*p.Modules-sumSq) / 2
	return p.ModuleTime*float64(maxLoad) + p.CommCost*crossPairs, nil
}

// EvenSplit returns the balanced assignment of M modules over procs
// processors (the paper's strip rule applied to modules).
func EvenSplit(modules, procs int) []int {
	counts := make([]int, procs)
	base, rem := modules/procs, modules%procs
	for i := range counts {
		counts[i] = base
		if i < rem {
			counts[i]++
		}
	}
	return counts
}

// Assignment is an optimized module assignment.
type Assignment struct {
	Counts   []int
	Cost     float64
	Extremal bool // all-on-one or even split
}

// Optimal returns the best assignment over procs processors. By the
// Indurkhya/Nicol theorem (constant module times) only the two extremal
// candidates matter; this evaluates both and returns the cheaper,
// breaking the tie toward one processor. VerifyExtremal exhaustively
// confirms the theorem for small instances.
func Optimal(p Program, procs int) (Assignment, error) {
	if err := p.Validate(); err != nil {
		return Assignment{}, err
	}
	if procs < 1 {
		return Assignment{}, fmt.Errorf("modassign: procs=%d must be positive", procs)
	}
	if procs > p.Modules {
		procs = p.Modules
	}
	one := make([]int, procs)
	one[0] = p.Modules
	oneCost, err := p.Cost(one)
	if err != nil {
		return Assignment{}, err
	}
	even := EvenSplit(p.Modules, procs)
	evenCost, err := p.Cost(even)
	if err != nil {
		return Assignment{}, err
	}
	if oneCost <= evenCost {
		return Assignment{Counts: one, Cost: oneCost, Extremal: true}, nil
	}
	return Assignment{Counts: even, Cost: evenCost, Extremal: true}, nil
}

// VerifyExtremal exhaustively searches all two-processor splits and
// reports whether any strictly beats both extremal candidates — the
// theorem says none can. Returns the best split count on processor one
// and the verdict. Intended for tests and demonstrations; O(M).
func VerifyExtremal(p Program) (bestK int, extremalOptimal bool, err error) {
	if err := p.Validate(); err != nil {
		return 0, false, err
	}
	m := p.Modules
	best := -1
	bestCost := 0.0
	for k := 0; k <= m/2; k++ {
		cost, err := p.Cost([]int{k, m - k})
		if err != nil {
			return 0, false, err
		}
		if best < 0 || cost < bestCost {
			best, bestCost = k, cost
		}
	}
	evenK := m / 2
	return best, best == 0 || best == evenK, nil
}
