package modassign

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := (Program{Modules: 0, ModuleTime: 1}).Validate(); err == nil {
		t.Error("0 modules accepted")
	}
	if err := (Program{Modules: 4, ModuleTime: 0}).Validate(); err == nil {
		t.Error("zero module time accepted")
	}
	if err := (Program{Modules: 4, ModuleTime: 1, CommCost: -1}).Validate(); err == nil {
		t.Error("negative comm accepted")
	}
	if err := (Program{Modules: 4, ModuleTime: 1, CommCost: 0.5}).Validate(); err != nil {
		t.Error(err)
	}
}

func TestCost(t *testing.T) {
	p := Program{Modules: 6, ModuleTime: 2, CommCost: 0.5}
	// All on one: 6·2 = 12, no cross pairs.
	c, err := p.Cost([]int{6, 0})
	if err != nil {
		t.Fatal(err)
	}
	if c != 12 {
		t.Errorf("all-on-one cost %g, want 12", c)
	}
	// Even split across 2: max load 3 → 6, cross pairs 3·3=9 → 4.5.
	c, err = p.Cost([]int{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if c != 10.5 {
		t.Errorf("even cost %g, want 10.5", c)
	}
	if _, err := p.Cost([]int{5, 0}); err == nil {
		t.Error("wrong total accepted")
	}
	if _, err := p.Cost([]int{-1, 7}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestEvenSplit(t *testing.T) {
	counts := EvenSplit(10, 4)
	want := []int{3, 3, 2, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("EvenSplit = %v", counts)
		}
	}
}

// TestExtremalTheorem is the Indurkhya/Nicol result: for constant module
// times, no two-processor split strictly beats both extremal candidates.
// Property-tested over random programs.
func TestExtremalTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	f := func() bool {
		p := Program{
			Modules:    2 + rng.Intn(200),
			ModuleTime: math.Exp(rng.Float64()*6 - 3),
			CommCost:   math.Exp(rng.Float64()*6-3) * float64(rng.Intn(2)),
		}
		_, extremal, err := VerifyExtremal(p)
		return err == nil && extremal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestOptimalMatchesExhaustive: Optimal's two-candidate evaluation equals
// the exhaustive two-processor optimum.
func TestOptimalMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 100; trial++ {
		p := Program{
			Modules:    2 + rng.Intn(60),
			ModuleTime: rng.Float64() + 0.1,
			CommCost:   rng.Float64(),
		}
		opt, err := Optimal(p, 2)
		if err != nil {
			t.Fatal(err)
		}
		bestCost := math.Inf(1)
		for k := 0; k <= p.Modules; k++ {
			c, err := p.Cost([]int{k, p.Modules - k})
			if err != nil {
				t.Fatal(err)
			}
			if c < bestCost {
				bestCost = c
			}
		}
		if opt.Cost > bestCost*(1+1e-12) {
			t.Errorf("trial %d: Optimal %g > exhaustive %g (%+v)", trial, opt.Cost, bestCost, p)
		}
	}
}

// TestRegimes: cheap communication favors spreading; expensive favors
// one processor — the §2 dichotomy.
func TestRegimes(t *testing.T) {
	cheap := Program{Modules: 64, ModuleTime: 1, CommCost: 1e-4}
	a, err := Optimal(cheap, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts[0] == 64 {
		t.Error("cheap communication: did not spread")
	}
	pricey := Program{Modules: 64, ModuleTime: 1, CommCost: 10}
	b, err := Optimal(pricey, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b.Counts[0] != 64 {
		t.Errorf("expensive communication: spread anyway: %v", b.Counts)
	}
	if !a.Extremal || !b.Extremal {
		t.Error("non-extremal result")
	}
}

func TestOptimalErrors(t *testing.T) {
	if _, err := Optimal(Program{}, 2); err == nil {
		t.Error("invalid program accepted")
	}
	if _, err := Optimal(Program{Modules: 4, ModuleTime: 1}, 0); err == nil {
		t.Error("0 procs accepted")
	}
	// More processors than modules clamps.
	a, err := Optimal(Program{Modules: 3, ModuleTime: 1, CommCost: 0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Counts) != 3 {
		t.Errorf("counts %v", a.Counts)
	}
	if _, _, err := VerifyExtremal(Program{}); err == nil {
		t.Error("VerifyExtremal invalid program accepted")
	}
}
