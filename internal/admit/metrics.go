package admit

import "optspeed/internal/telemetry"

// RegisterMetrics exports the admission gate and every configured
// tenant as scrape-time reads. The tenant set is fixed at controller
// construction (quota files are loaded before serving), so the label
// space is bounded and known up front.
func (c *Controller) RegisterMetrics(r *telemetry.Registry) {
	gate := func(read func(GateStats) float64) func() float64 {
		return func() float64 { return read(c.gate.Stats()) }
	}
	r.NewGaugeFunc("optspeed_admission_gate_capacity",
		"Admission gate concurrency bound in evaluation units.",
		gate(func(s GateStats) float64 { return float64(s.Capacity) }))
	r.NewGaugeFunc("optspeed_admission_gate_in_flight",
		"Currently admitted evaluation units.",
		gate(func(s GateStats) float64 { return float64(s.InFlight) }))
	r.NewGaugeFunc("optspeed_admission_gate_queued",
		"Requests waiting for an evaluation slot.",
		gate(func(s GateStats) float64 { return float64(s.Queued) }))
	r.NewCounterFunc("optspeed_admission_gate_admitted_total",
		"Evaluation slot grants.",
		gate(func(s GateStats) float64 { return float64(s.Admitted) }))
	const shedHelp = "Requests shed by the admission gate, by reason."
	r.NewCounterFunc("optspeed_admission_gate_shed_total", shedHelp,
		gate(func(s GateStats) float64 { return float64(s.ShedQueueFull) }),
		telemetry.L("reason", "queue_full"))
	r.NewCounterFunc("optspeed_admission_gate_shed_total", shedHelp,
		gate(func(s GateStats) float64 { return float64(s.ShedWaitExpired) }),
		telemetry.L("reason", "wait_expired"))
	r.NewCounterFunc("optspeed_admission_gate_shed_total", shedHelp,
		gate(func(s GateStats) float64 { return float64(s.ShedEvicted) }),
		telemetry.L("reason", "evicted"))
	for _, t := range c.all {
		t := t
		lbl := telemetry.L("tenant", t.Name())
		r.NewCounterFunc("optspeed_tenant_admitted_total",
			"Requests that passed the tenant's rate check.",
			func() float64 { return float64(t.Stats().Admitted) }, lbl)
		r.NewCounterFunc("optspeed_tenant_rate_limited_total",
			"Token-bucket rejections (429 rate_limited).",
			func() float64 { return float64(t.Stats().RateLimited) }, lbl)
		r.NewCounterFunc("optspeed_tenant_quota_rejected_total",
			"Job quota rejections (429 quota_exceeded).",
			func() float64 { return float64(t.Stats().QuotaRejected) }, lbl)
		r.NewGaugeFunc("optspeed_tenant_jobs_in_flight",
			"Tenant's currently resident submitted jobs.",
			func() float64 { return float64(t.Stats().InFlightJobs) }, lbl)
		r.NewGaugeFunc("optspeed_tenant_queued_cost",
			"Summed estimated spec count of the tenant's resident jobs.",
			func() float64 { return float64(t.Stats().QueuedCost) }, lbl)
	}
}
