package admit

import "time"

// bucket is a continuous-refill token bucket. It is not self-locking:
// the owning Tenant serializes access under its own mutex, which keeps
// one lock acquisition per admission decision.
type bucket struct {
	rate   float64 // tokens per second; <= 0 means unlimited
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
}

// newBucket builds a bucket that starts full. A non-positive rate
// disables limiting; a non-positive burst with a positive rate gets a
// one-second burst window (rate tokens), never less than one token —
// a bucket that can't hold one token admits nothing.
func newBucket(rate float64, burst int) bucket {
	b := bucket{rate: rate, burst: float64(burst)}
	if rate > 0 && b.burst <= 0 {
		b.burst = rate
	}
	if rate > 0 && b.burst < 1 {
		b.burst = 1
	}
	b.tokens = b.burst
	return b
}

// take removes n tokens at time now. On refusal it reports how long
// until n tokens will have refilled — the Retry-After hint.
func (b *bucket) take(now time.Time, n float64) (bool, time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	if b.last.IsZero() {
		b.last = now
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	// A clock that moves backwards (or stands still) simply doesn't
	// refill; last only ever advances.
	if now.After(b.last) {
		b.last = now
	}
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	wait := time.Duration((n - b.tokens) / b.rate * float64(time.Second))
	return false, wait
}
