// Package admit is the overload-protection layer: per-tenant token
// buckets and job quotas, a server-wide admission gate that sheds load
// instead of queueing unboundedly, and the peer circuit breaker the
// dispatch layer uses to eject flapping workers.
//
// The design point mirrors the model this repository serves: past the
// optimal operating point, adding work makes everything slower. The
// gate keeps the engine at its knee — a bounded number of concurrently
// admitted requests, a bounded wait behind them, then an explicit,
// cheap rejection (429 for per-tenant limits, 503 for server-wide
// overload) that the client can pace itself against via Retry-After.
// Under sustained overload the gate grants newest-first (adaptive
// LIFO): fresh requests ride through at near-uncontended latency while
// stale waiters — whose callers have likely timed out already — are
// the ones shed.
package admit

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Rejection codes, mirrored by the service's error envelope.
const (
	// CodeRateLimited is a per-tenant token-bucket rejection (429).
	CodeRateLimited = "rate_limited"
	// CodeQuotaExceeded is a per-tenant concurrency or queued-cost
	// quota rejection (429).
	CodeQuotaExceeded = "quota_exceeded"
	// CodeOverloaded is a server-wide admission-gate shed (503).
	CodeOverloaded = "overloaded"
)

// Rejection is a typed admission refusal: which limit fired, the HTTP
// status it maps to, and how long the caller should wait before
// retrying. It implements error so gate and quota failures flow
// through ordinary error returns.
type Rejection struct {
	// Status is the HTTP status the service maps this rejection to:
	// 429 for per-tenant limits, 503 for server-wide overload.
	Status int
	// Code is the stable machine-readable cause (CodeRateLimited,
	// CodeQuotaExceeded, CodeOverloaded).
	Code string
	// Message is the human explanation.
	Message string
	// Tenant names the tenant the rejection applies to ("" until the
	// service stamps it).
	Tenant string
	// RetryAfter is the advisory wait before retrying: the bucket's
	// refill time for rate limits, the gate's wait bound for sheds.
	RetryAfter time.Duration
}

func (r *Rejection) Error() string { return "admit: " + r.Message }

// ErrUnknownKey reports an API key that matches no configured tenant.
// It is a hard authentication failure (401), not a quota rejection:
// an unknown key must not silently fall into the anonymous tier.
var ErrUnknownKey = errors.New("admit: unknown API key")

// DefaultQuotaRetryAfter is the advisory retry interval for quota
// rejections, where no refill schedule exists to derive one from.
const DefaultQuotaRetryAfter = time.Second

// Config configures a Controller.
type Config struct {
	// Tenants is the static tenant registry (see LoadTenantsFile); nil
	// serves every request as the anonymous tenant with no rate or
	// quota limits — the gate is then the only admission control.
	Tenants *TenantsFile
	// Gate configures the server-wide admission gate.
	Gate GateConfig
	// Now is the clock (tests); nil means time.Now.
	Now func() time.Time
}

// Controller is the service's admission authority: it resolves API
// keys to tenants, owns the per-tenant buckets and quotas, and owns
// the server-wide gate.
type Controller struct {
	gate  *Gate
	anon  *Tenant
	byKey map[string]*Tenant
	all   []*Tenant // stats order: anonymous first, then config order
}

// New builds a controller. A nil Tenants config yields an unlimited
// anonymous tenant (the gate still applies).
func New(cfg Config) *Controller {
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	c := &Controller{
		gate:  NewGate(cfg.Gate),
		byKey: make(map[string]*Tenant),
	}
	var anonLimits Limits
	if cfg.Tenants != nil && cfg.Tenants.Anonymous != nil {
		anonLimits = cfg.Tenants.Anonymous.Limits()
	}
	c.anon = newTenant(AnonymousTenant, anonLimits, now)
	c.all = append(c.all, c.anon)
	if cfg.Tenants != nil {
		for _, tc := range cfg.Tenants.Tenants {
			t := newTenant(tc.Name, tc.Limits(), now)
			c.byKey[tc.Key] = t
			c.all = append(c.all, t)
		}
	}
	return c
}

// Gate returns the server-wide admission gate.
func (c *Controller) Gate() *Gate { return c.gate }

// Resolve maps an API key to its tenant. An empty key is the anonymous
// tenant; an unknown non-empty key is ErrUnknownKey.
func (c *Controller) Resolve(key string) (*Tenant, error) {
	if key == "" {
		return c.anon, nil
	}
	t, ok := c.byKey[key]
	if !ok {
		return nil, ErrUnknownKey
	}
	return t, nil
}

// Anonymous returns the default tenant.
func (c *Controller) Anonymous() *Tenant { return c.anon }

// Stats snapshots the controller: the gate's counters plus every
// tenant's.
func (c *Controller) Stats() Stats {
	st := Stats{
		Gate:    c.gate.Stats(),
		Tenants: make(map[string]TenantStats, len(c.all)),
	}
	for _, t := range c.all {
		st.Tenants[t.Name()] = t.Stats()
	}
	return st
}

// Stats is the controller's metrics snapshot, embedded in the
// service's /v1/metrics response.
type Stats struct {
	Gate    GateStats              `json:"gate"`
	Tenants map[string]TenantStats `json:"tenants"`
}

// TenantStats is one tenant's admission counters.
type TenantStats struct {
	// Admitted counts requests that passed this tenant's rate check.
	Admitted uint64 `json:"admitted"`
	// RateLimited counts token-bucket rejections (429 rate_limited).
	RateLimited uint64 `json:"rate_limited"`
	// QuotaRejected counts concurrency/queued-cost rejections
	// (429 quota_exceeded).
	QuotaRejected uint64 `json:"quota_rejected"`
	// InFlightJobs is the tenant's currently resident submitted jobs.
	InFlightJobs int `json:"in_flight_jobs"`
	// QueuedCost is the summed estimated spec count of those jobs.
	QueuedCost int `json:"queued_cost"`
}

// Tenant is one admission principal: a token bucket for request rate
// and two job quotas (concurrent jobs, queued evaluation cost). All
// methods are safe for concurrent use.
type Tenant struct {
	name   string
	limits Limits
	now    func() time.Time

	mu            sync.Mutex
	bucket        bucket
	inFlightJobs  int
	queuedCost    int
	admitted      uint64
	rateLimited   uint64
	quotaRejected uint64
}

func newTenant(name string, limits Limits, now func() time.Time) *Tenant {
	return &Tenant{
		name:   name,
		limits: limits,
		now:    now,
		bucket: newBucket(limits.RatePerSec, limits.Burst),
	}
}

// Name returns the tenant's configured name ("anonymous" for the
// default tier).
func (t *Tenant) Name() string { return t.name }

// AllowRequest runs the tenant's token bucket for one request. It
// returns nil when admitted, or a 429 rate_limited Rejection carrying
// the bucket's refill time.
func (t *Tenant) AllowRequest() *Rejection {
	t.mu.Lock()
	ok, wait := t.bucket.take(t.now(), 1)
	if ok {
		t.admitted++
		t.mu.Unlock()
		return nil
	}
	t.rateLimited++
	t.mu.Unlock()
	return &Rejection{
		Status:     429,
		Code:       CodeRateLimited,
		Message:    fmt.Sprintf("tenant %s exceeded its request rate", t.name),
		Tenant:     t.name,
		RetryAfter: wait,
	}
}

// AcquireJob reserves one job slot and cost units of queued evaluation
// against the tenant's quotas. On success it returns a release that
// must be called exactly when the job leaves the system (terminal
// state or failed submission); the release is idempotent. On failure
// it returns a 429 quota_exceeded Rejection.
func (t *Tenant) AcquireJob(cost int) (func(), *Rejection) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if max := t.limits.MaxConcurrentJobs; max > 0 && t.inFlightJobs+1 > max {
		t.quotaRejected++
		return nil, &Rejection{
			Status:     429,
			Code:       CodeQuotaExceeded,
			Message:    fmt.Sprintf("tenant %s is at its limit of %d concurrent jobs", t.name, max),
			Tenant:     t.name,
			RetryAfter: DefaultQuotaRetryAfter,
		}
	}
	if max := t.limits.MaxQueuedCost; max > 0 && t.queuedCost+cost > max {
		t.quotaRejected++
		return nil, &Rejection{
			Status:     429,
			Code:       CodeQuotaExceeded,
			Message:    fmt.Sprintf("tenant %s would exceed its queued-cost limit of %d specs", t.name, max),
			Tenant:     t.name,
			RetryAfter: DefaultQuotaRetryAfter,
		}
	}
	t.inFlightJobs++
	t.queuedCost += cost
	var once sync.Once
	return func() {
		once.Do(func() {
			t.mu.Lock()
			t.inFlightJobs--
			t.queuedCost -= cost
			t.mu.Unlock()
		})
	}, nil
}

// Stats snapshots the tenant's counters.
func (t *Tenant) Stats() TenantStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TenantStats{
		Admitted:      t.admitted,
		RateLimited:   t.rateLimited,
		QuotaRejected: t.quotaRejected,
		InFlightJobs:  t.inFlightJobs,
		QueuedCost:    t.queuedCost,
	}
}
