package admit

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Gate defaults.
const (
	// DefaultMaxWait bounds how long an impatient request waits for an
	// evaluation slot before being shed.
	DefaultMaxWait = time.Second
	// defaultMinConcurrent floors the derived concurrency bound so
	// small machines still overlap I/O with evaluation.
	defaultMinConcurrent = 16
)

// GateConfig configures a Gate. Zero values take defaults.
type GateConfig struct {
	// MaxConcurrent bounds concurrently admitted units of work;
	// 0 means max(16, 4×GOMAXPROCS).
	MaxConcurrent int
	// MaxQueue bounds waiting impatient requests before the gate sheds;
	// 0 means 2×MaxConcurrent, negative disables queueing entirely
	// (immediate shed once the slots are full).
	MaxQueue int
	// MaxWait bounds one impatient request's time in the queue;
	// 0 means DefaultMaxWait.
	MaxWait time.Duration
}

// Gate is the server-wide admission gate: a fixed number of
// concurrency slots, a bounded waiter queue, and explicit shedding.
//
// Two admission disciplines share the slots. Acquire is for
// synchronous requests: bounded queue, bounded wait, and under
// overload the *newest* waiter is granted first (adaptive LIFO) while
// stale waiters age out and shed — latency for admitted requests stays
// near the uncontended floor, and the queue can't silently turn into
// an unbounded latency reservoir. When the queue is full, shedding is
// cost-aware: a cheap arrival evicts the most expensive waiter rather
// than being dropped itself, so one giant sweep can't starve a stream
// of small queries. AcquirePatient is for background job runners:
// FIFO, no wait bound, no queue bound, served only when no synchronous
// request is waiting — jobs soak up idle capacity without competing
// with interactive traffic.
type Gate struct {
	capacity int
	maxQueue int
	maxWait  time.Duration

	mu      sync.Mutex
	inUse   int
	queue   []*gateWaiter // impatient; append at tail, grant from tail
	patient []*gateWaiter // background; append at tail, grant from head

	admitted     uint64
	shedQueue    uint64
	shedWait     uint64
	shedEvicted  uint64
	queuedPeak   int
	inFlightPeak int
}

// gateWaiter is one parked acquirer. ready is buffered so a grant or
// eviction never blocks on a waiter that is timing out concurrently.
type gateWaiter struct {
	ready chan bool // true = slot granted, false = evicted
	cost  int
}

// NewGate builds a gate.
func NewGate(cfg GateConfig) *Gate {
	capacity := cfg.MaxConcurrent
	if capacity <= 0 {
		capacity = 4 * runtime.GOMAXPROCS(0)
		if capacity < defaultMinConcurrent {
			capacity = defaultMinConcurrent
		}
	}
	maxQueue := cfg.MaxQueue
	switch {
	case maxQueue == 0:
		maxQueue = 2 * capacity
	case maxQueue < 0:
		maxQueue = 0
	}
	maxWait := cfg.MaxWait
	if maxWait <= 0 {
		maxWait = DefaultMaxWait
	}
	return &Gate{capacity: capacity, maxQueue: maxQueue, maxWait: maxWait}
}

// Capacity returns the gate's concurrency bound.
func (g *Gate) Capacity() int { return g.capacity }

// shedRejection builds the 503 the service sends for a shed request.
func (g *Gate) shedRejection() *Rejection {
	return &Rejection{
		Status:     503,
		Code:       CodeOverloaded,
		Message:    "server is at capacity; request shed",
		RetryAfter: g.maxWait,
	}
}

// Acquire claims one slot for a synchronous request of the given cost
// (its estimated spec count). It returns an idempotent release that
// must be called when the work finishes, or an error: a *Rejection
// when the request was shed (queue full, wait bound, or evicted by a
// cheaper arrival), otherwise the context's own error. A nil error
// always comes with a non-nil release.
func (g *Gate) Acquire(ctx context.Context, cost int) (func(), error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g.mu.Lock()
	if g.inUse < g.capacity {
		g.grantLocked()
		g.mu.Unlock()
		return g.releaseFunc(), nil
	}
	if len(g.queue) >= g.maxQueue {
		// Queue full: cost-aware shed. If some waiter is strictly more
		// expensive than this arrival, evict it and take its place —
		// cheap requests survive overload; otherwise shed the arrival.
		vi := -1
		for i, w := range g.queue {
			if w.cost > cost && (vi < 0 || w.cost > g.queue[vi].cost) {
				vi = i
			}
		}
		if vi < 0 {
			g.shedQueue++
			g.mu.Unlock()
			return nil, g.shedRejection()
		}
		victim := g.queue[vi]
		g.queue = append(g.queue[:vi], g.queue[vi+1:]...)
		g.shedEvicted++
		victim.ready <- false
	}
	w := &gateWaiter{ready: make(chan bool, 1), cost: cost}
	g.queue = append(g.queue, w)
	if q := len(g.queue); q > g.queuedPeak {
		g.queuedPeak = q
	}
	g.mu.Unlock()

	timer := time.NewTimer(g.maxWait)
	defer timer.Stop()
	select {
	case ok := <-w.ready:
		if !ok {
			return nil, g.shedRejection()
		}
		return g.releaseFunc(), nil
	case <-timer.C:
		return g.abandon(w, nil)
	case <-ctx.Done():
		return g.abandon(w, ctx.Err())
	}
}

// abandon removes a waiter that stopped waiting (timeout when ctxErr
// is nil, context death otherwise), racing a concurrent grant or
// eviction: if the waiter already left the queue, its ready value is
// guaranteed to arrive, and a granted slot is kept (timeout) or
// released (dead context) rather than leaked.
func (g *Gate) abandon(w *gateWaiter, ctxErr error) (func(), error) {
	g.mu.Lock()
	for i, q := range g.queue {
		if q == w {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			if ctxErr == nil {
				g.shedWait++
			}
			g.mu.Unlock()
			if ctxErr != nil {
				return nil, ctxErr
			}
			return nil, g.shedRejection()
		}
	}
	g.mu.Unlock()
	if ok := <-w.ready; ok {
		if ctxErr != nil {
			// The slot arrived just as the caller's context died; hand it
			// straight back so it is never leaked.
			g.release()
			return nil, ctxErr
		}
		// The slot arrived as the wait bound fired: use it. Shedding a
		// request that already holds capacity would waste the grant.
		return g.releaseFunc(), nil
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	return nil, g.shedRejection()
}

// AcquirePatient claims one slot for a background job runner: FIFO,
// exempt from the queue bound and the wait bound, served only when no
// synchronous request is waiting. It fails only when ctx dies.
func (g *Gate) AcquirePatient(ctx context.Context, cost int) (func(), error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g.mu.Lock()
	if g.inUse < g.capacity {
		g.grantLocked()
		g.mu.Unlock()
		return g.releaseFunc(), nil
	}
	w := &gateWaiter{ready: make(chan bool, 1), cost: cost}
	g.patient = append(g.patient, w)
	g.mu.Unlock()
	select {
	case <-w.ready: // patient waiters are never evicted: always true
		return g.releaseFunc(), nil
	case <-ctx.Done():
		g.mu.Lock()
		for i, q := range g.patient {
			if q == w {
				g.patient = append(g.patient[:i], g.patient[i+1:]...)
				g.mu.Unlock()
				return nil, ctx.Err()
			}
		}
		g.mu.Unlock()
		<-w.ready // grant already in flight; hand the slot back
		g.release()
		return nil, ctx.Err()
	}
}

// grantLocked takes a free slot. Caller holds g.mu.
func (g *Gate) grantLocked() {
	g.inUse++
	g.admitted++
	if g.inUse > g.inFlightPeak {
		g.inFlightPeak = g.inUse
	}
}

// releaseFunc wraps release in a sync.Once so double-release bugs in
// callers can never mint capacity.
func (g *Gate) releaseFunc() func() {
	var once sync.Once
	return func() { once.Do(g.release) }
}

// release hands the slot to the newest impatient waiter (LIFO — the
// freshest request has the most patience budget left and the liveliest
// client), then to the oldest patient waiter, and only then back to
// the free pool.
func (g *Gate) release() {
	g.mu.Lock()
	if n := len(g.queue); n > 0 {
		w := g.queue[n-1]
		g.queue = g.queue[:n-1]
		g.admitted++
		g.mu.Unlock()
		w.ready <- true
		return
	}
	if len(g.patient) > 0 {
		w := g.patient[0]
		g.patient = g.patient[1:]
		g.admitted++
		g.mu.Unlock()
		w.ready <- true
		return
	}
	g.inUse--
	g.mu.Unlock()
}

// GateStats is the gate's metrics snapshot.
type GateStats struct {
	// Capacity is the concurrency bound.
	Capacity int `json:"capacity"`
	// InFlight is the currently admitted unit count.
	InFlight int `json:"in_flight"`
	// InFlightPeak is the high-water mark of InFlight.
	InFlightPeak int `json:"in_flight_peak"`
	// Queued is the current impatient + patient waiter count.
	Queued int `json:"queued"`
	// QueuedPeak is the high-water mark of the impatient queue.
	QueuedPeak int `json:"queued_peak"`
	// Admitted counts slot grants.
	Admitted uint64 `json:"admitted"`
	// ShedQueueFull counts arrivals shed because the queue was full.
	ShedQueueFull uint64 `json:"shed_queue_full"`
	// ShedWaitExpired counts waiters shed at the wait bound.
	ShedWaitExpired uint64 `json:"shed_wait_expired"`
	// ShedEvicted counts expensive waiters evicted by cheaper arrivals.
	ShedEvicted uint64 `json:"shed_evicted"`
}

// Sheds sums every shed class.
func (s GateStats) Sheds() uint64 {
	return s.ShedQueueFull + s.ShedWaitExpired + s.ShedEvicted
}

// String renders the snapshot for logs.
func (s GateStats) String() string {
	return fmt.Sprintf("capacity=%d in_flight=%d queued=%d admitted=%d sheds=%d",
		s.Capacity, s.InFlight, s.Queued, s.Admitted, s.Sheds())
}

// Stats snapshots the gate.
func (g *Gate) Stats() GateStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return GateStats{
		Capacity:        g.capacity,
		InFlight:        g.inUse,
		InFlightPeak:    g.inFlightPeak,
		Queued:          len(g.queue) + len(g.patient),
		QueuedPeak:      g.queuedPeak,
		Admitted:        g.admitted,
		ShedQueueFull:   g.shedQueue,
		ShedWaitExpired: g.shedWait,
		ShedEvicted:     g.shedEvicted,
	}
}
