package admit

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func testConfig() *TenantsFile {
	tf, err := ParseTenants([]byte(`{
		"anonymous": {"rate": 5, "burst": 2},
		"tenants": [
			{"name": "team-a", "key": "ka", "rate": 100, "burst": 10,
			 "max_concurrent_jobs": 2, "max_queued_cost": 1000},
			{"name": "team-b", "key": "kb"}
		]
	}`))
	if err != nil {
		panic(err)
	}
	return tf
}

func TestResolve(t *testing.T) {
	c := New(Config{Tenants: testConfig()})
	anon, err := c.Resolve("")
	if err != nil || anon.Name() != AnonymousTenant {
		t.Fatalf("anonymous resolve: %v %v", anon, err)
	}
	a, err := c.Resolve("ka")
	if err != nil || a.Name() != "team-a" {
		t.Fatalf("keyed resolve: %v %v", a, err)
	}
	if _, err := c.Resolve("nope"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("unknown key: %v", err)
	}
}

func TestRateLimitAndRefill(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := New(Config{Tenants: testConfig(), Now: clk.now})
	anon := c.Anonymous()
	// Burst 2: two admits, then a rejection with a refill hint.
	for i := 0; i < 2; i++ {
		if rej := anon.AllowRequest(); rej != nil {
			t.Fatalf("burst admit %d rejected: %v", i, rej)
		}
	}
	rej := anon.AllowRequest()
	if rej == nil {
		t.Fatal("third request should be rate limited")
	}
	if rej.Code != CodeRateLimited || rej.Status != 429 || rej.Tenant != AnonymousTenant {
		t.Fatalf("rejection %+v", rej)
	}
	// Rate 5/s: one token refills in 200ms.
	if rej.RetryAfter <= 0 || rej.RetryAfter > 200*time.Millisecond {
		t.Fatalf("RetryAfter %v, want (0, 200ms]", rej.RetryAfter)
	}
	clk.advance(rej.RetryAfter)
	if rej := anon.AllowRequest(); rej != nil {
		t.Fatalf("post-refill request rejected: %v", rej)
	}
	st := anon.Stats()
	if st.Admitted != 3 || st.RateLimited != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestUnlimitedTenant(t *testing.T) {
	c := New(Config{Tenants: testConfig()})
	b, _ := c.Resolve("kb")
	for i := 0; i < 1000; i++ {
		if rej := b.AllowRequest(); rej != nil {
			t.Fatalf("unlimited tenant rejected at %d: %v", i, rej)
		}
	}
	if rel, rej := b.AcquireJob(1 << 30); rej != nil {
		t.Fatalf("unlimited tenant job rejected: %v", rej)
	} else {
		rel()
	}
}

func TestJobQuotas(t *testing.T) {
	c := New(Config{Tenants: testConfig()})
	a, _ := c.Resolve("ka")
	rel1, rej := a.AcquireJob(400)
	if rej != nil {
		t.Fatalf("first job: %v", rej)
	}
	// Queued cost 400+700 > 1000: rejected on cost.
	if _, rej := a.AcquireJob(700); rej == nil || rej.Code != CodeQuotaExceeded {
		t.Fatalf("cost quota: %+v", rej)
	}
	rel2, rej := a.AcquireJob(500)
	if rej != nil {
		t.Fatalf("second job: %v", rej)
	}
	// Concurrency 2: a third job is rejected even though cost fits.
	if _, rej := a.AcquireJob(1); rej == nil || rej.Code != CodeQuotaExceeded {
		t.Fatalf("concurrency quota: %+v", rej)
	}
	if st := a.Stats(); st.InFlightJobs != 2 || st.QueuedCost != 900 || st.QuotaRejected != 2 {
		t.Fatalf("stats %+v", st)
	}
	rel1()
	rel1() // idempotent
	rel2()
	if st := a.Stats(); st.InFlightJobs != 0 || st.QueuedCost != 0 {
		t.Fatalf("stats after release %+v", st)
	}
}

// TestConcurrentMultiTenantAdmission is the multi-tenant race test: a
// chaotic burst across tenants must leave every counter balanced — no
// leaked job slots, no leaked queued cost — asserted by draining each
// tenant back to its exact quota afterwards.
func TestConcurrentMultiTenantAdmission(t *testing.T) {
	tf, err := ParseTenants([]byte(`{
		"tenants": [
			{"name": "t1", "key": "k1", "rate": 100000, "burst": 100000,
			 "max_concurrent_jobs": 3, "max_queued_cost": 50},
			{"name": "t2", "key": "k2", "rate": 100000, "burst": 100000,
			 "max_concurrent_jobs": 5, "max_queued_cost": 100}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{Tenants: tf})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := "k1"
			if i%2 == 0 {
				key = "k2"
			}
			tn, err := c.Resolve(key)
			if err != nil {
				t.Errorf("resolve: %v", err)
				return
			}
			for n := 0; n < 500; n++ {
				tn.AllowRequest()
				if rel, rej := tn.AcquireJob(1 + n%10); rej == nil {
					if n%3 == 0 {
						time.Sleep(time.Microsecond)
					}
					rel()
				}
			}
		}(i)
	}
	wg.Wait()
	for key, wantJobs := range map[string]int{"k1": 3, "k2": 5} {
		tn, _ := c.Resolve(key)
		if st := tn.Stats(); st.InFlightJobs != 0 || st.QueuedCost != 0 {
			t.Fatalf("tenant %s after burst: %+v, want zero in-flight and cost", key, st)
		}
		// Drain to exact capacity: exactly MaxConcurrentJobs slots of
		// cost 1 must be acquirable, and not one more.
		var rels []func()
		for n := 0; n < wantJobs; n++ {
			rel, rej := tn.AcquireJob(1)
			if rej != nil {
				t.Fatalf("tenant %s drain %d/%d: %v (leaked slot)", key, n+1, wantJobs, rej)
			}
			rels = append(rels, rel)
		}
		if _, rej := tn.AcquireJob(1); rej == nil {
			t.Fatalf("tenant %s acquired past its quota: minted slot", key)
		}
		for _, rel := range rels {
			rel()
		}
	}
}

func TestControllerStats(t *testing.T) {
	c := New(Config{Tenants: testConfig()})
	c.Anonymous().AllowRequest()
	a, _ := c.Resolve("ka")
	rel, _ := a.AcquireJob(10)
	defer rel()
	st := c.Stats()
	if len(st.Tenants) != 3 {
		t.Fatalf("tenants in stats: %d", len(st.Tenants))
	}
	if st.Tenants["team-a"].InFlightJobs != 1 || st.Tenants["team-a"].QueuedCost != 10 {
		t.Fatalf("team-a stats %+v", st.Tenants["team-a"])
	}
	if st.Gate.Capacity <= 0 {
		t.Fatalf("gate stats %+v", st.Gate)
	}
}

func TestParseTenantsRejectsBadConfigs(t *testing.T) {
	cases := map[string]string{
		"unknown field":  `{"tenants": [{"name": "x", "key": "k", "rates": 5}]}`,
		"missing name":   `{"tenants": [{"key": "k"}]}`,
		"missing key":    `{"tenants": [{"name": "x"}]}`,
		"duplicate name": `{"tenants": [{"name": "x", "key": "a"}, {"name": "x", "key": "b"}]}`,
		"duplicate key":  `{"tenants": [{"name": "x", "key": "a"}, {"name": "y", "key": "a"}]}`,
		"negative limit": `{"tenants": [{"name": "x", "key": "a", "rate": -1}]}`,
		"anonymous key":  `{"anonymous": {"key": "a"}}`,
		"renamed anon":   `{"anonymous": {"name": "root"}}`,
		"reserved name":  `{"tenants": [{"name": "anonymous", "key": "a"}]}`,
	}
	for what, doc := range cases {
		if _, err := ParseTenants([]byte(doc)); err == nil {
			t.Errorf("%s accepted: %s", what, doc)
		}
	}
	if _, err := ParseTenants([]byte(`{}`)); err != nil {
		t.Fatalf("empty config rejected: %v", err)
	}
}

func TestRejectionError(t *testing.T) {
	rej := &Rejection{Status: 429, Code: CodeRateLimited, Message: "slow down"}
	var target *Rejection
	if !errors.As(error(rej), &target) {
		t.Fatal("Rejection must satisfy errors.As")
	}
	if !strings.Contains(rej.Error(), "slow down") {
		t.Fatalf("error text %q", rej.Error())
	}
}
