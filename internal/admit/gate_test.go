package admit

import (
	"context"
	"errors"
	"math/rand/v2"
	"sync"
	"testing"
	"time"
)

func mustAcquire(t *testing.T, g *Gate, cost int) func() {
	t.Helper()
	release, err := g.Acquire(context.Background(), cost)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	return release
}

func TestGateFastPathAndRelease(t *testing.T) {
	g := NewGate(GateConfig{MaxConcurrent: 2, MaxQueue: -1})
	r1 := mustAcquire(t, g, 1)
	r2 := mustAcquire(t, g, 1)
	if _, err := g.Acquire(context.Background(), 1); err == nil {
		t.Fatal("third acquire should shed with no queue")
	}
	r1()
	r1() // idempotent: a double release must not mint capacity
	r3 := mustAcquire(t, g, 1)
	r2()
	r3()
	if st := g.Stats(); st.InFlight != 0 || st.Admitted != 3 || st.ShedQueueFull != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestGateShedsAtWaitBound(t *testing.T) {
	g := NewGate(GateConfig{MaxConcurrent: 1, MaxQueue: 4, MaxWait: 30 * time.Millisecond})
	release := mustAcquire(t, g, 1)
	defer release()
	start := time.Now()
	_, err := g.Acquire(context.Background(), 1)
	var rej *Rejection
	if !errors.As(err, &rej) {
		t.Fatalf("want *Rejection, got %v", err)
	}
	if rej.Code != CodeOverloaded || rej.Status != 503 {
		t.Fatalf("rejection %+v", rej)
	}
	if rej.RetryAfter <= 0 {
		t.Fatalf("shed rejection has no Retry-After hint: %+v", rej)
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Fatalf("shed after only %v, want the wait bound honored", waited)
	}
	if st := g.Stats(); st.ShedWaitExpired != 1 || st.Queued != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestGateLIFOGrantsNewestFirst(t *testing.T) {
	g := NewGate(GateConfig{MaxConcurrent: 1, MaxQueue: 8, MaxWait: time.Second})
	hold := mustAcquire(t, g, 1)

	type outcome struct {
		order int
		err   error
	}
	results := make(chan outcome, 2)
	acquireAsync := func(order int) {
		go func() {
			release, err := g.Acquire(context.Background(), 1)
			if err == nil {
				defer release()
			}
			results <- outcome{order: order, err: err}
		}()
	}
	acquireAsync(1)
	waitQueued(t, g, 1)
	acquireAsync(2)
	waitQueued(t, g, 2)
	hold() // one slot frees: the NEWER waiter (2) must get it
	first := <-results
	if first.order != 2 || first.err != nil {
		t.Fatalf("first grant went to waiter %d (err %v), want the newest (2)", first.order, first.err)
	}
	second := <-results
	if second.err != nil {
		t.Fatalf("older waiter should be granted once the slot frees again: %v", second.err)
	}
}

func TestGateCostAwareEviction(t *testing.T) {
	g := NewGate(GateConfig{MaxConcurrent: 1, MaxQueue: 1, MaxWait: 2 * time.Second})
	hold := mustAcquire(t, g, 1)
	defer hold()

	expensiveErr := make(chan error, 1)
	go func() {
		_, err := g.Acquire(context.Background(), 1000)
		expensiveErr <- err
	}()
	waitQueued(t, g, 1)
	// A cheap arrival finds the queue full; the expensive waiter must be
	// evicted in its favor, not the cheap one shed.
	cheapDone := make(chan error, 1)
	go func() {
		_, err := g.Acquire(context.Background(), 1)
		cheapDone <- err
	}()
	var rej *Rejection
	if err := <-expensiveErr; !errors.As(err, &rej) {
		t.Fatalf("expensive waiter: want eviction *Rejection, got %v", err)
	}
	// An equally cheap second arrival must be shed itself, not evict.
	_, err := g.Acquire(context.Background(), 1)
	if !errors.As(err, &rej) {
		t.Fatalf("equal-cost arrival: want *Rejection, got %v", err)
	}
	st := g.Stats()
	if st.ShedEvicted != 1 || st.ShedQueueFull != 1 {
		t.Fatalf("stats %+v, want one eviction and one queue-full shed", st)
	}
	hold()
	if err := <-cheapDone; err != nil {
		t.Fatalf("surviving cheap waiter: %v", err)
	}
}

func TestGatePatientServedAfterImpatient(t *testing.T) {
	g := NewGate(GateConfig{MaxConcurrent: 1, MaxQueue: 4, MaxWait: time.Second})
	hold := mustAcquire(t, g, 1)

	order := make(chan string, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		release, err := g.AcquirePatient(context.Background(), 1)
		if err != nil {
			t.Errorf("patient: %v", err)
			return
		}
		order <- "patient"
		release()
	}()
	waitQueued(t, g, 1)
	go func() {
		defer wg.Done()
		release, err := g.Acquire(context.Background(), 1)
		if err != nil {
			t.Errorf("impatient: %v", err)
			return
		}
		order <- "impatient"
		release()
	}()
	waitQueued(t, g, 2)
	hold()
	wg.Wait()
	if first := <-order; first != "impatient" {
		t.Fatalf("first grant went to %q, want the impatient waiter", first)
	}
}

func TestGatePatientCancellation(t *testing.T) {
	g := NewGate(GateConfig{MaxConcurrent: 1, MaxQueue: 4})
	hold := mustAcquire(t, g, 1)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := g.AcquirePatient(ctx, 1)
		errCh <- err
	}()
	waitQueued(t, g, 1)
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	hold()
	if st := g.Stats(); st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("stats %+v after cancelled patient waiter", st)
	}
}

func TestGateAcquireContextAlreadyDead(t *testing.T) {
	g := NewGate(GateConfig{MaxConcurrent: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.Acquire(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, err := g.AcquirePatient(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestGateChaoticBurstDrainsToExactCapacity is the no-token-leak
// property test: a racing burst of acquires (mixed costs, timeouts,
// cancellations, evictions) must leave the gate with exactly zero
// in-flight slots once every winner has released — asserted by
// draining the gate back to its exact capacity afterwards.
func TestGateChaoticBurstDrainsToExactCapacity(t *testing.T) {
	const capacity = 4
	g := NewGate(GateConfig{MaxConcurrent: capacity, MaxQueue: 8, MaxWait: 10 * time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%5 == 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(rand.IntN(8))*time.Millisecond)
				defer cancel()
			}
			cost := 1 << (i % 10) // mixed costs drive the eviction path
			var release func()
			var err error
			if i%7 == 0 {
				release, err = g.AcquirePatient(ctx, cost)
			} else {
				release, err = g.Acquire(ctx, cost)
			}
			if err != nil {
				return
			}
			time.Sleep(time.Duration(rand.IntN(3)) * time.Millisecond)
			release()
		}(i)
	}
	wg.Wait()
	if st := g.Stats(); st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("after burst: %+v, want zero in flight and zero queued", st)
	}
	// Drain: exactly capacity slots must be immediately acquirable, and
	// not one more.
	releases := make([]func(), 0, capacity)
	for i := 0; i < capacity; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		release, err := g.Acquire(ctx, 1)
		cancel()
		if err != nil {
			t.Fatalf("drain acquire %d/%d failed (%v): leaked slot", i+1, capacity, err)
		}
		releases = append(releases, release)
	}
	if _, err := g.Acquire(context.Background(), 1); err == nil {
		t.Fatal("acquired past capacity: minted slot")
	}
	for _, r := range releases {
		r()
	}
	if st := g.Stats(); st.InFlight != 0 {
		t.Fatalf("after drain: %+v", st)
	}
}

// waitQueued spins until the gate reports n queued waiters.
func waitQueued(t *testing.T, g *Gate, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for g.Stats().Queued < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d (at %d)", n, g.Stats().Queued)
		}
		time.Sleep(time.Millisecond)
	}
}
