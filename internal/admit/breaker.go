package admit

import (
	"math/rand/v2"
	"sync"
	"time"
)

// Breaker defaults.
const (
	// DefaultBreakerThreshold is the consecutive-failure count that
	// opens a closed breaker.
	DefaultBreakerThreshold = 3
	// DefaultBreakerBaseCooldown is the first open period; each
	// consecutive reopen doubles it.
	DefaultBreakerBaseCooldown = 500 * time.Millisecond
	// DefaultBreakerMaxCooldown caps the exponential backoff.
	DefaultBreakerMaxCooldown = 30 * time.Second
	// DefaultBreakerJitter is the ± fraction of random spread applied
	// to each cooldown, so a fleet of coordinators doesn't re-probe a
	// recovering peer in lockstep.
	DefaultBreakerJitter = 0.2
)

// BreakerState is a breaker's position in the closed → open →
// half-open cycle.
type BreakerState string

// Breaker states.
const (
	// BreakerClosed admits every attempt.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen rejects every attempt until the cooldown elapses.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen admits exactly one probe attempt; its outcome
	// closes or reopens the breaker.
	BreakerHalfOpen BreakerState = "half-open"
)

// BreakerConfig configures a Breaker. Zero values take defaults.
type BreakerConfig struct {
	// Threshold is the consecutive failures that open a closed
	// breaker; 0 means DefaultBreakerThreshold.
	Threshold int
	// BaseCooldown is the first open period; 0 means
	// DefaultBreakerBaseCooldown. Each consecutive reopen doubles the
	// cooldown up to MaxCooldown.
	BaseCooldown time.Duration
	// MaxCooldown caps the backoff; 0 means DefaultBreakerMaxCooldown.
	MaxCooldown time.Duration
	// Jitter is the ± fraction applied to each cooldown; 0 means
	// DefaultBreakerJitter, negative disables jitter (tests).
	Jitter float64
	// OnTransition, when non-nil, observes every state change exactly
	// once per transition (the once-per-transition logging hook). It is
	// called without the breaker's lock held.
	OnTransition func(from, to BreakerState, cooldown time.Duration)
	// Now is the clock (tests); nil means time.Now.
	Now func() time.Time
	// Rand yields [0,1) for jitter (tests); nil means math/rand/v2.
	Rand func() float64
}

// Breaker is a per-peer circuit breaker with exponential-backoff
// cooldowns and a single-probe half-open state. It is safe for
// concurrent use. The failure signal is consecutive: any success fully
// closes the breaker and resets the backoff.
type Breaker struct {
	threshold    int
	baseCooldown time.Duration
	maxCooldown  time.Duration
	jitter       float64
	onTransition func(from, to BreakerState, cooldown time.Duration)
	now          func() time.Time
	rand         func() float64

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive failures while closed
	openings int       // consecutive opens; the backoff exponent
	until    time.Time // open until (open state)
	probing  bool      // half-open probe outstanding
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	b := &Breaker{
		threshold:    cfg.Threshold,
		baseCooldown: cfg.BaseCooldown,
		maxCooldown:  cfg.MaxCooldown,
		jitter:       cfg.Jitter,
		onTransition: cfg.OnTransition,
		now:          cfg.Now,
		rand:         cfg.Rand,
		state:        BreakerClosed,
	}
	if b.threshold <= 0 {
		b.threshold = DefaultBreakerThreshold
	}
	if b.baseCooldown <= 0 {
		b.baseCooldown = DefaultBreakerBaseCooldown
	}
	if b.maxCooldown <= 0 {
		b.maxCooldown = DefaultBreakerMaxCooldown
	}
	switch {
	case b.jitter == 0:
		b.jitter = DefaultBreakerJitter
	case b.jitter < 0:
		b.jitter = 0
	}
	if b.now == nil {
		b.now = time.Now
	}
	if b.rand == nil {
		b.rand = rand.Float64
	}
	return b
}

// Allow reports whether an attempt may proceed now. An open breaker
// whose cooldown has elapsed transitions to half-open and admits
// exactly one probe; every Allow=true must be matched by Success,
// Failure, or Abort, or a half-open breaker would wedge.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	var tr *transition
	allowed := false
	switch b.state {
	case BreakerClosed:
		allowed = true
	case BreakerOpen:
		if !b.now().Before(b.until) {
			tr = b.setStateLocked(BreakerHalfOpen, 0)
			b.probing = true
			allowed = true
		}
	case BreakerHalfOpen:
		if !b.probing {
			b.probing = true
			allowed = true
		}
	}
	b.mu.Unlock()
	tr.notify(b.onTransition)
	return allowed
}

// Success records a successful attempt: the breaker closes fully and
// the backoff resets, whatever state it was in.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.fails = 0
	b.openings = 0
	b.probing = false
	tr := b.setStateLocked(BreakerClosed, 0)
	b.mu.Unlock()
	tr.notify(b.onTransition)
}

// Failure records a failed attempt. A closed breaker opens at the
// threshold; a half-open breaker reopens immediately with a doubled
// cooldown. Failures reported while already open (attempts that were
// in flight when the breaker tripped) don't extend the cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	var tr *transition
	switch b.state {
	case BreakerClosed:
		if b.fails++; b.fails >= b.threshold {
			tr = b.openLocked()
		}
	case BreakerHalfOpen:
		b.probing = false
		tr = b.openLocked()
	}
	b.mu.Unlock()
	tr.notify(b.onTransition)
}

// Abort releases a half-open probe slot without a verdict — the
// attempt died for an unrelated reason (the parent request was
// cancelled), so the breaker stays half-open and the next Allow may
// probe again.
func (b *Breaker) Abort() {
	b.mu.Lock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}

// openLocked transitions to open with the next backoff cooldown.
// Caller holds b.mu.
func (b *Breaker) openLocked() *transition {
	b.openings++
	cd := b.baseCooldown << (b.openings - 1)
	if b.openings > 30 || cd > b.maxCooldown || cd <= 0 {
		cd = b.maxCooldown
	}
	if b.jitter > 0 {
		cd = time.Duration(float64(cd) * (1 + b.jitter*(2*b.rand()-1)))
	}
	b.until = b.now().Add(cd)
	b.fails = 0
	return b.setStateLocked(BreakerOpen, cd)
}

// transition carries one state change out of the lock to the
// OnTransition hook.
type transition struct {
	from, to BreakerState
	cooldown time.Duration
}

func (t *transition) notify(f func(from, to BreakerState, cooldown time.Duration)) {
	if t != nil && f != nil {
		f(t.from, t.to, t.cooldown)
	}
}

// setStateLocked applies a state change, returning a transition record
// only when the state actually changed. Caller holds b.mu.
func (b *Breaker) setStateLocked(to BreakerState, cooldown time.Duration) *transition {
	if b.state == to {
		return nil
	}
	from := b.state
	b.state = to
	return &transition{from: from, to: to, cooldown: cooldown}
}

// State returns the breaker's current position. It does not advance an
// elapsed open cooldown — only Allow performs the open → half-open
// transition — so a reporting read never steals the probe slot.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// RetryIn reports how long until an open breaker admits its probe
// (zero for closed and half-open breakers, or an elapsed cooldown).
func (b *Breaker) RetryIn() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return 0
	}
	d := b.until.Sub(b.now())
	if d < 0 {
		return 0
	}
	return d
}
