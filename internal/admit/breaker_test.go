package admit

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(clk *fakeClock, transitions *[]string) *Breaker {
	return NewBreaker(BreakerConfig{
		Threshold:    3,
		BaseCooldown: 100 * time.Millisecond,
		MaxCooldown:  time.Second,
		Jitter:       -1, // deterministic
		Now:          clk.now,
		OnTransition: func(from, to BreakerState, _ time.Duration) {
			if transitions != nil {
				*transitions = append(*transitions, string(from)+"->"+string(to))
			}
		},
	})
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	var transitions []string
	b := newTestBreaker(clk, &transitions)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %s below threshold", b.State())
	}
	b.Allow()
	b.Failure() // third consecutive failure: opens
	if b.State() != BreakerOpen {
		t.Fatalf("state %s after threshold", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted an attempt inside the cooldown")
	}
	if got := b.RetryIn(); got != 100*time.Millisecond {
		t.Fatalf("RetryIn %v, want the base cooldown", got)
	}
	// Exactly one transition so far, not one per refused attempt.
	if len(transitions) != 1 || transitions[0] != "closed->open" {
		t.Fatalf("transitions %v", transitions)
	}
}

func TestBreakerHalfOpenSingleProbeAndRecovery(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	var transitions []string
	b := newTestBreaker(clk, &transitions)
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	clk.advance(150 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("elapsed cooldown should admit a probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %s during probe", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state %s after successful probe", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused")
	}
	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions %v, want %v", transitions, want)
		}
	}
}

func TestBreakerBackoffDoublesAndCaps(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newTestBreaker(clk, nil)
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	cooldowns := []time.Duration{b.RetryIn()}
	// Fail each half-open probe: the cooldown must double, capped at 1s.
	for i := 0; i < 5; i++ {
		clk.advance(b.RetryIn() + time.Millisecond)
		if !b.Allow() {
			t.Fatalf("probe %d refused", i)
		}
		b.Failure()
		cooldowns = append(cooldowns, b.RetryIn())
	}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for i := range want {
		if cooldowns[i] != want[i] {
			t.Fatalf("cooldown %d = %v, want %v (%v)", i, cooldowns[i], want[i], cooldowns)
		}
	}
	// A success resets the exponent: the next opening starts from base.
	clk.advance(2 * time.Second)
	b.Allow()
	b.Success()
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	if got := b.RetryIn(); got != 100*time.Millisecond {
		t.Fatalf("post-recovery cooldown %v, want base", got)
	}
}

func TestBreakerAbortFreesProbeSlot(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newTestBreaker(clk, nil)
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Abort() // probe died without a verdict (parent cancelled)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %s after abort", b.State())
	}
	if !b.Allow() {
		t.Fatal("aborted probe slot not freed: breaker wedged half-open")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state %s", b.State())
	}
}

func TestBreakerSuccessResetsConsecutiveFailures(t *testing.T) {
	b := newTestBreaker(&fakeClock{t: time.Unix(1000, 0)}, nil)
	for round := 0; round < 5; round++ {
		b.Failure()
		b.Failure()
		b.Success() // never 3 consecutive: must stay closed
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %s after interleaved successes", b.State())
	}
}

func TestBreakerJitterSpreadsCooldown(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := 0.0
	b := NewBreaker(BreakerConfig{
		Threshold:    1,
		BaseCooldown: time.Second,
		MaxCooldown:  time.Minute,
		Jitter:       0.2,
		Now:          clk.now,
		Rand:         func() float64 { return r },
	})
	b.Failure() // rand 0 → -20%
	if got := b.RetryIn(); got != 800*time.Millisecond {
		t.Fatalf("cooldown %v, want 800ms at rand=0", got)
	}
	clk.advance(time.Second)
	b.Allow()
	r = 1.0
	b.Failure() // doubled base ×(1+0.2) = 2.4s
	if got := b.RetryIn(); got != 2400*time.Millisecond {
		t.Fatalf("cooldown %v, want 2.4s at rand=1", got)
	}
}
