package admit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// AnonymousTenant is the name of the default tier every request
// without an API key resolves to.
const AnonymousTenant = "anonymous"

// Limits is one tenant's admission limits. Zero values mean unlimited
// — absence of a limit, not absence of service.
type Limits struct {
	// RatePerSec is the token-bucket refill rate in requests/second.
	RatePerSec float64
	// Burst is the bucket capacity (peak back-to-back requests);
	// 0 with a positive rate defaults to one second's worth.
	Burst int
	// MaxConcurrentJobs bounds resident submitted v2 jobs.
	MaxConcurrentJobs int
	// MaxQueuedCost bounds the summed estimated spec count of the
	// tenant's resident jobs.
	MaxQueuedCost int
}

// TenantConfig is one tenant entry in the -tenants file.
type TenantConfig struct {
	// Name identifies the tenant in metrics, logs, and error bodies.
	Name string `json:"name"`
	// Key is the API key (Authorization: Bearer <key> or X-API-Key)
	// that resolves to this tenant. Required for named tenants, absent
	// for the anonymous entry.
	Key string `json:"key,omitempty"`
	// Rate is the request rate limit in requests/second (0 =
	// unlimited).
	Rate float64 `json:"rate,omitempty"`
	// Burst is the token-bucket capacity (0 = one second's worth).
	Burst int `json:"burst,omitempty"`
	// MaxConcurrentJobs bounds resident v2 jobs (0 = unlimited).
	MaxConcurrentJobs int `json:"max_concurrent_jobs,omitempty"`
	// MaxQueuedCost bounds the summed estimated spec count of resident
	// jobs (0 = unlimited).
	MaxQueuedCost int `json:"max_queued_cost,omitempty"`
}

// Limits extracts the config's limit set.
func (tc TenantConfig) Limits() Limits {
	return Limits{
		RatePerSec:        tc.Rate,
		Burst:             tc.Burst,
		MaxConcurrentJobs: tc.MaxConcurrentJobs,
		MaxQueuedCost:     tc.MaxQueuedCost,
	}
}

// TenantsFile is the -tenants config file shape:
//
//	{
//	  "anonymous": {"rate": 50, "burst": 100, "max_concurrent_jobs": 8},
//	  "tenants": [
//	    {"name": "team-a", "key": "ta-8c1...", "rate": 200, "burst": 400,
//	     "max_concurrent_jobs": 32, "max_queued_cost": 100000}
//	  ]
//	}
//
// The anonymous entry limits keyless requests; omitting it leaves them
// unlimited (the admission gate still applies). See docs/operations.md.
type TenantsFile struct {
	// Anonymous limits keyless requests; nil means unlimited.
	Anonymous *TenantConfig `json:"anonymous,omitempty"`
	// Tenants are the keyed tenants.
	Tenants []TenantConfig `json:"tenants,omitempty"`
}

// ParseTenants decodes and validates a tenants config document.
// Unknown fields are rejected: a misspelled limit silently becoming
// "unlimited" is exactly the failure mode a quota file must not have.
func ParseTenants(data []byte) (*TenantsFile, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var tf TenantsFile
	if err := dec.Decode(&tf); err != nil {
		return nil, fmt.Errorf("admit: parse tenants config: %w", err)
	}
	if tf.Anonymous != nil {
		if tf.Anonymous.Key != "" {
			return nil, fmt.Errorf("admit: the anonymous entry must not have a key")
		}
		if tf.Anonymous.Name != "" && tf.Anonymous.Name != AnonymousTenant {
			return nil, fmt.Errorf("admit: the anonymous entry must not be renamed (got %q)", tf.Anonymous.Name)
		}
	}
	names := map[string]bool{AnonymousTenant: true}
	keys := map[string]bool{}
	for i, tc := range tf.Tenants {
		if tc.Name == "" {
			return nil, fmt.Errorf("admit: tenant %d has no name", i)
		}
		if tc.Key == "" {
			return nil, fmt.Errorf("admit: tenant %q has no key", tc.Name)
		}
		if names[tc.Name] {
			return nil, fmt.Errorf("admit: duplicate tenant name %q", tc.Name)
		}
		if keys[tc.Key] {
			return nil, fmt.Errorf("admit: tenant %q reuses another tenant's key", tc.Name)
		}
		if tc.Rate < 0 || tc.Burst < 0 || tc.MaxConcurrentJobs < 0 || tc.MaxQueuedCost < 0 {
			return nil, fmt.Errorf("admit: tenant %q has a negative limit", tc.Name)
		}
		names[tc.Name] = true
		keys[tc.Key] = true
	}
	return &tf, nil
}

// LoadTenantsFile reads and parses a -tenants config file.
func LoadTenantsFile(path string) (*TenantsFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("admit: read tenants config: %w", err)
	}
	tf, err := ParseTenants(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return tf, nil
}
