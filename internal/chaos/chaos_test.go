package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"optspeed/internal/telemetry"
)

func TestParseSpec(t *testing.T) {
	t.Run("bare seed selects the default drill", func(t *testing.T) {
		cfg, on, err := ParseSpec("42")
		if err != nil || !on {
			t.Fatalf("ParseSpec(42) = on=%v err=%v", on, err)
		}
		want := DefaultDrill
		want.Seed = 42
		if cfg != want {
			t.Fatalf("config = %+v, want %+v", cfg, want)
		}
	})
	t.Run("explicit fields leave unset rates zero", func(t *testing.T) {
		cfg, on, err := ParseSpec("seed=7,drop=0.1,latency=0.2:50ms")
		if err != nil || !on {
			t.Fatalf("on=%v err=%v", on, err)
		}
		want := Config{Seed: 7, Drop: 0.1, Latency: 0.2, LatencyAmount: 50 * time.Millisecond}
		if cfg != want {
			t.Fatalf("config = %+v, want %+v", cfg, want)
		}
	})
	t.Run("latency rate without duration takes the default amount", func(t *testing.T) {
		cfg, _, err := ParseSpec("seed=7,latency=0.5")
		if err != nil {
			t.Fatal(err)
		}
		if cfg.LatencyAmount != DefaultDrill.LatencyAmount {
			t.Fatalf("latency amount = %v, want default %v", cfg.LatencyAmount, DefaultDrill.LatencyAmount)
		}
	})
	t.Run("off and empty are not errors", func(t *testing.T) {
		for _, spec := range []string{"", "off", "  "} {
			if _, on, err := ParseSpec(spec); on || err != nil {
				t.Fatalf("ParseSpec(%q) = on=%v err=%v, want off", spec, on, err)
			}
		}
	})
	t.Run("rejects malformed specs", func(t *testing.T) {
		for _, spec := range []string{
			"drop=0.1",                // no seed
			"seed=1,drop=1.5",         // rate out of range
			"seed=1,bogus=0.1",        // unknown field
			"seed=1,latency=x",        // bad rate
			"seed=x",                  // bad seed
			"seed=1,latency=0.1:nope", // bad duration
		} {
			if _, _, err := ParseSpec(spec); err == nil {
				t.Errorf("ParseSpec(%q) accepted", spec)
			}
		}
	})
}

// TestScheduleDeterminism pins the replay contract: the decisions a
// live site draws are a pure function of (seed, site, seq) — equal to
// Preview, equal across independently built planes, and insensitive to
// traffic on other sites.
func TestScheduleDeterminism(t *testing.T) {
	cfg := DefaultDrill
	cfg.Seed = 99
	p1, p2 := New(cfg), New(cfg)

	const n = 500
	var live []Decision
	for i := 0; i < n; i++ {
		if d := p1.decide("w0 http /v2/sweeps/stream", menuHTTP); d.Fault != FaultNone {
			live = append(live, d)
		}
		// Interleave unrelated traffic: it must not perturb the site
		// under test.
		p1.decide("transport /v2/sweeps/stream", menuTransport)
	}
	var pure []Decision
	for _, d := range p1.Preview(SiteHTTP, "w0 http /v2/sweeps/stream", n) {
		if d.Fault != FaultNone {
			pure = append(pure, d)
		}
	}
	if len(live) == 0 {
		t.Fatal("default drill injected nothing over 500 decisions")
	}
	if !reflect.DeepEqual(live, pure) {
		t.Fatalf("live schedule diverged from Preview: %d vs %d injections", len(live), len(pure))
	}
	if got := p1.ScheduleFor("w0 http /v2/sweeps/stream"); !reflect.DeepEqual(got, live) {
		t.Fatalf("ScheduleFor returned %d entries, want %d", len(got), len(live))
	}
	// A second plane with the same config previews the same schedule.
	if !reflect.DeepEqual(
		p1.Preview(SiteHTTP, "w0 http /v2/sweeps/stream", n),
		p2.Preview(SiteHTTP, "w0 http /v2/sweeps/stream", n),
	) {
		t.Fatal("same-config planes preview different schedules")
	}
	// Different seeds produce different schedules (with overwhelming
	// probability over 500 draws).
	cfg2 := cfg
	cfg2.Seed = 100
	if reflect.DeepEqual(
		New(cfg).Preview(SiteHTTP, "x", n),
		New(cfg2).Preview(SiteHTTP, "x", n),
	) {
		t.Fatal("different seeds previewed identical schedules")
	}
}

func TestPreviewDoesNotAdvanceLiveSequence(t *testing.T) {
	p := New(Config{Seed: 1, Drop: 1})
	p.Preview(SiteHTTP, "s", 10)
	if d := p.decide("s", menuHTTP); d.Seq != 0 {
		t.Fatalf("first live decision at seq %d, want 0", d.Seq)
	}
}

func TestReportCountsInjections(t *testing.T) {
	p := New(Config{Seed: 3, Drop: 1})
	for i := 0; i < 5; i++ {
		p.decide("s", menuHTTP)
	}
	rep := p.Report()
	if rep.Counts.Drop != 5 || rep.Counts.Injected() != 5 || rep.Counts.Decisions != 5 {
		t.Fatalf("counts = %+v", rep.Counts)
	}
	if rep.SiteSeqs["s"] != 5 {
		t.Fatalf("site seq = %d, want 5", rep.SiteSeqs["s"])
	}
	if len(rep.Schedule) != 5 {
		t.Fatalf("schedule holds %d entries, want 5", len(rep.Schedule))
	}
}

// middlewareProbe drives one request through the chaos middleware and
// reports what the client observed.
func middlewareProbe(t *testing.T, cfg Config, path string) (status int, body string, severed bool) {
	t.Helper()
	p := New(cfg)
	inner := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, strings.Repeat("line of payload\n", 400))
	})
	ts := httptest.NewServer(p.Middleware("t", inner))
	defer ts.Close()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		return 0, "", true
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp.StatusCode, string(raw), err != nil
}

func TestMiddlewareFaults(t *testing.T) {
	const full = 400 * len("line of payload\n")
	t.Run("drop severs the connection", func(t *testing.T) {
		if _, _, severed := middlewareProbe(t, Config{Seed: 1, Drop: 1}, "/x"); !severed {
			t.Fatal("drop delivered a response")
		}
	})
	t.Run("http500 answers 500", func(t *testing.T) {
		status, _, _ := middlewareProbe(t, Config{Seed: 1, HTTP500: 1}, "/x")
		if status != http.StatusInternalServerError {
			t.Fatalf("status = %d", status)
		}
	})
	t.Run("garbage prepends the non-protocol line", func(t *testing.T) {
		_, body, _ := middlewareProbe(t, Config{Seed: 1, Garbage: 1}, "/x")
		if !strings.HasPrefix(body, garbageLine) {
			t.Fatalf("body starts %q", body[:min(len(body), 32)])
		}
	})
	t.Run("truncate delivers a strict prefix then severs", func(t *testing.T) {
		_, body, severed := middlewareProbe(t, Config{Seed: 1, Truncate: 1}, "/x")
		if !severed {
			t.Fatal("truncate closed the stream cleanly")
		}
		if len(body) == 0 || len(body) >= full {
			t.Fatalf("delivered %d of %d bytes", len(body), full)
		}
	})
	t.Run("healthz is exempt", func(t *testing.T) {
		status, body, severed := middlewareProbe(t, Config{Seed: 1, Drop: 1}, "/healthz")
		if severed || status != http.StatusOK || len(body) != full {
			t.Fatalf("exempt path disturbed: status=%d severed=%v bytes=%d", status, severed, len(body))
		}
	})
}

func TestTransportDrop(t *testing.T) {
	p := New(Config{Seed: 1, Drop: 1})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer ts.Close()
	c := &http.Client{Transport: p.Transport(nil)}
	if _, err := c.Get(ts.URL + "/x"); err == nil {
		t.Fatal("dropped round trip succeeded")
	}
	// Exempt paths pass through even at rate 1.
	resp, err := c.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("exempt path failed: %v", err)
	}
	resp.Body.Close()
}

func TestStoreWriteFault(t *testing.T) {
	hook := New(Config{Seed: 1, StoreWrite: 1}).StoreWriteFault()
	if err := hook(); err == nil {
		t.Fatal("rate-1 storewrite hook returned nil")
	}
	if err := New(Config{Seed: 1}).StoreWriteFault()(); err != nil {
		t.Fatalf("zero-rate hook errored: %v", err)
	}
}

func TestRegisterMetricsExposition(t *testing.T) {
	p := New(Config{Seed: 5, Drop: 1})
	p.decide("s", menuHTTP)
	r := telemetry.NewRegistry()
	p.RegisterMetrics(r)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	page := sb.String()
	if err := telemetry.CheckExposition([]byte(page)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	if !strings.Contains(page, `optspeed_chaos_injected_total{fault="drop"} 1`) {
		t.Fatalf("drop counter missing:\n%s", page)
	}
	if !strings.Contains(page, "optspeed_chaos_seed 5") {
		t.Fatal("seed gauge missing")
	}
}
