package chaos

import (
	"fmt"
	"net/http"
	"time"
)

// exemptPath reports whether the chaos middleware leaves a request
// untouched: liveness probes must stay honest (the membership layer's
// re-admission depends on them reflecting the real process, not the
// drill), and the metrics page is how a drill is observed.
func exemptPath(path string) bool {
	return path == "/healthz" || path == "/metrics"
}

// Middleware wraps an http.Handler with the plane's service-side
// faults. sitePrefix namespaces the injection sites (one worker per
// prefix in a multi-worker drill), so each wrapped server draws from
// its own deterministic streams. Sites are keyed per request path, so
// the schedule for a path is independent of traffic on other paths.
func (p *Plane) Middleware(sitePrefix string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exemptPath(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		d := p.decide(sitePrefix+" http "+r.URL.Path, menuHTTP)
		switch d.Fault {
		case FaultLatency:
			select {
			case <-time.After(d.Delay):
			case <-r.Context().Done():
				return
			}
		case FaultDrop:
			// Sever the connection with no response bytes: net/http
			// aborts the handler and closes the socket, which the
			// caller sees as a transport error.
			panic(http.ErrAbortHandler)
		case Fault5xx:
			http.Error(w, "chaos: injected fault", http.StatusInternalServerError)
			return
		case FaultTruncate:
			w = &truncateWriter{ResponseWriter: w, budget: d.Cutoff}
		case FaultGarbage:
			w = &garbageWriter{ResponseWriter: w}
		}
		next.ServeHTTP(w, r)
	})
}

// truncateWriter delivers at most budget body bytes, flushes them so
// the caller really receives the prefix, then severs the connection —
// a mid-stream peer death with no terminal chunk.
type truncateWriter struct {
	http.ResponseWriter
	budget int
	dead   bool
}

func (t *truncateWriter) Write(b []byte) (int, error) {
	if t.dead {
		panic(http.ErrAbortHandler)
	}
	if len(b) >= t.budget {
		t.ResponseWriter.Write(b[:t.budget])
		if f, ok := t.ResponseWriter.(http.Flusher); ok {
			f.Flush()
		}
		t.dead = true
		panic(http.ErrAbortHandler)
	}
	t.budget -= len(b)
	return t.ResponseWriter.Write(b)
}

func (t *truncateWriter) Flush() {
	if f, ok := t.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the real writer (the
// streaming route clears its own write deadline through it).
func (t *truncateWriter) Unwrap() http.ResponseWriter { return t.ResponseWriter }

// garbageLine is the non-protocol line garbage injection emits. It is
// not valid JSON, so a stream consumer must reject it.
const garbageLine = "\x7bchaos-garbage\n"

// garbageWriter prepends one garbage line to the response body —
// corrupting an NDJSON stream's framing or a JSON document's syntax,
// whichever the route serves.
type garbageWriter struct {
	http.ResponseWriter
	wrote bool
}

func (g *garbageWriter) Write(b []byte) (int, error) {
	if !g.wrote {
		g.wrote = true
		g.ResponseWriter.Write([]byte(garbageLine))
	}
	return g.ResponseWriter.Write(b)
}

func (g *garbageWriter) Flush() {
	if f, ok := g.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (g *garbageWriter) Unwrap() http.ResponseWriter { return g.ResponseWriter }

// Transport wraps a RoundTripper with the plane's dispatch-side
// faults: injected latency before the request leaves, or an outright
// connection failure. Response-body faults stay on the service side —
// the coordinator must see exactly what a real broken peer produces.
func (p *Plane) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return transportFunc(func(r *http.Request) (*http.Response, error) {
		if exemptPath(r.URL.Path) {
			return base.RoundTrip(r)
		}
		d := p.decide("transport "+r.URL.Path, menuTransport)
		switch d.Fault {
		case FaultLatency:
			select {
			case <-time.After(d.Delay):
			case <-r.Context().Done():
				return nil, r.Context().Err()
			}
		case FaultDrop:
			return nil, fmt.Errorf("chaos: connection dropped (seed %d, seq %d)", p.cfg.Seed, d.Seq)
		}
		return base.RoundTrip(r)
	})
}

type transportFunc func(*http.Request) (*http.Response, error)

func (f transportFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// StoreWriteFault returns the store's write-fault hook: a function the
// durable store calls before each WAL append, which fails the append
// on the schedule's storewrite decisions. The store's own degraded
// mode (count, log, keep serving) is exactly the behavior under drill.
func (p *Plane) StoreWriteFault() func() error {
	return func() error {
		d := p.decide("store append", menuStore)
		if d.Fault == FaultStoreWrite {
			return fmt.Errorf("chaos: injected store write error (seed %d, seq %d)", p.cfg.Seed, d.Seq)
		}
		return nil
	}
}
