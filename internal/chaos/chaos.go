// Package chaos is the deterministic fault-injection plane: a
// seed-driven schedule of latency, dropped connections, mid-stream
// truncation, garbage lines, 5xx responses, and store write errors,
// injected behind the interfaces the serving stack already crosses
// (http.Handler for the service surface, http.RoundTripper for
// dispatch's peer calls, and the store's write hook).
//
// Determinism is the point: every injection site draws its decisions
// from an independent pseudo-random stream keyed by (seed, site name,
// per-site sequence number), so the fault schedule for a given seed is
// a pure function of how many decisions each site has drawn — not of
// goroutine interleaving across sites. Re-running a drill with the
// same seed and the same per-site request counts replays the identical
// schedule, which is what lets `optload -chaos` assert its own
// reproducibility and lets an operator replay a failure by its seed.
//
// The plane is dormant unless explicitly constructed (optspeedd
// -chaos, optload -chaos, or a test); production builds never pay for
// it.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"optspeed/internal/telemetry"
)

// Fault enumerates the injectable failure modes.
type Fault string

const (
	// FaultNone means the site proceeds untouched.
	FaultNone Fault = "none"
	// FaultLatency delays the site by the configured amount.
	FaultLatency Fault = "latency"
	// FaultDrop severs the connection with no response (service side)
	// or fails the round trip with a transport error (dispatch side).
	FaultDrop Fault = "drop"
	// FaultTruncate cuts the response body short after a
	// deterministically chosen byte budget, then severs the connection
	// — the mid-stream death the dispatch accumulator must absorb.
	FaultTruncate Fault = "truncate"
	// FaultGarbage injects a non-protocol line into the response body.
	FaultGarbage Fault = "garbage"
	// Fault5xx answers with a plain HTTP 500.
	Fault5xx Fault = "http500"
	// FaultStoreWrite fails one durable-store append.
	FaultStoreWrite Fault = "storewrite"
)

// Config is one plane's fault schedule: a seed plus per-fault
// probabilities in [0,1]. The zero Config injects nothing.
type Config struct {
	// Seed keys every injection site's decision stream.
	Seed uint64 `json:"seed"`
	// Latency is the probability of a LatencyAmount stall.
	Latency       float64       `json:"latency,omitempty"`
	LatencyAmount time.Duration `json:"latency_amount,omitempty"`
	// Drop, Truncate, Garbage, HTTP500, and StoreWrite are the
	// per-decision probabilities of the corresponding fault.
	Drop       float64 `json:"drop,omitempty"`
	Truncate   float64 `json:"truncate,omitempty"`
	Garbage    float64 `json:"garbage,omitempty"`
	HTTP500    float64 `json:"http500,omitempty"`
	StoreWrite float64 `json:"storewrite,omitempty"`
}

// DefaultDrill is the rate profile a bare-seed spec selects: every
// fault class active at rates high enough to exercise recovery on a
// short run without drowning it.
var DefaultDrill = Config{
	Latency:       0.10,
	LatencyAmount: 30 * time.Millisecond,
	Drop:          0.05,
	Truncate:      0.05,
	Garbage:       0.05,
	HTTP500:       0.05,
	StoreWrite:    0.05,
}

// ParseSpec parses a -chaos flag value. Accepted forms:
//
//	"42"                         seed 42 with the DefaultDrill rates
//	"seed=42,drop=0.1"           explicit fields, unset rates zero
//	"seed=42,latency=0.2:50ms"   latency takes rate:duration
//
// An empty spec or "off" returns (nil-able) ok=false.
func ParseSpec(spec string) (Config, bool, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return Config{}, false, nil
	}
	if seed, err := strconv.ParseUint(spec, 10, 64); err == nil {
		cfg := DefaultDrill
		cfg.Seed = seed
		return cfg, true, nil
	}
	var cfg Config
	seen := false
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Config{}, false, fmt.Errorf("chaos: field %q is not key=value", field)
		}
		switch key {
		case "seed":
			seed, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Config{}, false, fmt.Errorf("chaos: seed %q: %v", val, err)
			}
			cfg.Seed = seed
			seen = true
		case "latency":
			rate, dur, hasDur := strings.Cut(val, ":")
			r, err := parseRate(key, rate)
			if err != nil {
				return Config{}, false, err
			}
			cfg.Latency = r
			cfg.LatencyAmount = DefaultDrill.LatencyAmount
			if hasDur {
				d, err := time.ParseDuration(dur)
				if err != nil {
					return Config{}, false, fmt.Errorf("chaos: latency duration %q: %v", dur, err)
				}
				cfg.LatencyAmount = d
			}
		case "drop", "truncate", "garbage", "http500", "storewrite":
			r, err := parseRate(key, val)
			if err != nil {
				return Config{}, false, err
			}
			switch key {
			case "drop":
				cfg.Drop = r
			case "truncate":
				cfg.Truncate = r
			case "garbage":
				cfg.Garbage = r
			case "http500":
				cfg.HTTP500 = r
			case "storewrite":
				cfg.StoreWrite = r
			}
		default:
			return Config{}, false, fmt.Errorf("chaos: unknown field %q", key)
		}
	}
	if !seen {
		return Config{}, false, fmt.Errorf("chaos: spec %q carries no seed", spec)
	}
	return cfg, true, nil
}

func parseRate(key, val string) (float64, error) {
	r, err := strconv.ParseFloat(val, 64)
	if err != nil || r < 0 || r > 1 {
		return 0, fmt.Errorf("chaos: %s rate %q is not a probability in [0,1]", key, val)
	}
	return r, nil
}

// Decision is one site's verdict for one sequence number.
type Decision struct {
	Site  string        `json:"site"`
	Seq   uint64        `json:"seq"`
	Fault Fault         `json:"fault"`
	Delay time.Duration `json:"delay,omitempty"`
	// Cutoff is the truncation byte budget (FaultTruncate only).
	Cutoff int `json:"cutoff,omitempty"`
}

// maxScheduleEntries bounds the recorded injection log; the full
// schedule is reconstructible from the seed, so the log is a
// convenience sample, not the source of truth.
const maxScheduleEntries = 4096

type siteState struct {
	seq atomic.Uint64
}

// Plane is one live fault schedule. All methods are safe for
// concurrent use.
type Plane struct {
	cfg Config

	mu       sync.Mutex
	sites    map[string]*siteState
	schedule []Decision

	injLatency  atomic.Uint64
	injDrop     atomic.Uint64
	injTruncate atomic.Uint64
	injGarbage  atomic.Uint64
	inj5xx      atomic.Uint64
	injStore    atomic.Uint64
	decisions   atomic.Uint64
}

// New builds a plane over cfg.
func New(cfg Config) *Plane {
	return &Plane{cfg: cfg, sites: make(map[string]*siteState)}
}

// Config returns the plane's schedule parameters.
func (p *Plane) Config() Config { return p.cfg }

// site returns (creating on first use) the named site's state.
func (p *Plane) site(name string) *siteState {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.sites[name]
	if !ok {
		s = &siteState{}
		p.sites[name] = s
	}
	return s
}

// splitmix64 is the finalizer that turns (seed, site, seq) into the
// decision draw. It is a fixed public mixing function, so a schedule
// is stable across builds and platforms.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// fnv64a hashes a site name.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// menus: the fault classes each site kind draws from, in fixed
// threshold order (the order is part of the schedule contract).
var (
	menuHTTP      = []Fault{FaultLatency, FaultDrop, FaultTruncate, FaultGarbage, Fault5xx}
	menuTransport = []Fault{FaultLatency, FaultDrop}
	menuStore     = []Fault{FaultStoreWrite}
)

func (p *Plane) rate(f Fault) float64 {
	switch f {
	case FaultLatency:
		return p.cfg.Latency
	case FaultDrop:
		return p.cfg.Drop
	case FaultTruncate:
		return p.cfg.Truncate
	case FaultGarbage:
		return p.cfg.Garbage
	case Fault5xx:
		return p.cfg.HTTP500
	case FaultStoreWrite:
		return p.cfg.StoreWrite
	}
	return 0
}

// decideAt is the pure schedule function: the decision site makes at
// sequence seq, independent of any plane state.
func (p *Plane) decideAt(site string, seq uint64, menu []Fault) Decision {
	d := Decision{Site: site, Seq: seq, Fault: FaultNone}
	v := splitmix64(p.cfg.Seed ^ fnv64a(site) ^ (seq * 0x9E3779B97F4A7C15))
	u := float64(v>>11) / float64(1<<53)
	acc := 0.0
	for _, f := range menu {
		acc += p.rate(f)
		if u < acc {
			d.Fault = f
			break
		}
	}
	switch d.Fault {
	case FaultLatency:
		d.Delay = p.cfg.LatencyAmount
	case FaultTruncate:
		// The cutoff is drawn from the same stream, so a replay
		// truncates at the same byte.
		d.Cutoff = 128 + int(splitmix64(v)%2048)
	}
	return d
}

// decide advances the named site's sequence and records any injection.
func (p *Plane) decide(site string, menu []Fault) Decision {
	seq := p.site(site).seq.Add(1) - 1
	d := p.decideAt(site, seq, menu)
	p.decisions.Add(1)
	if d.Fault == FaultNone {
		return d
	}
	switch d.Fault {
	case FaultLatency:
		p.injLatency.Add(1)
	case FaultDrop:
		p.injDrop.Add(1)
	case FaultTruncate:
		p.injTruncate.Add(1)
	case FaultGarbage:
		p.injGarbage.Add(1)
	case Fault5xx:
		p.inj5xx.Add(1)
	case FaultStoreWrite:
		p.injStore.Add(1)
	}
	p.mu.Lock()
	if len(p.schedule) < maxScheduleEntries {
		p.schedule = append(p.schedule, d)
	}
	p.mu.Unlock()
	return d
}

// SiteKind selects which fault menu a site draws from: HTTP response
// sites inject the full set, transport sites only latency and drops,
// store sites only write errors.
type SiteKind int

const (
	SiteHTTP SiteKind = iota
	SiteTransport
	SiteStore
)

func (k SiteKind) menu() []Fault {
	switch k {
	case SiteTransport:
		return menuTransport
	case SiteStore:
		return menuStore
	default:
		return menuHTTP
	}
}

// Preview returns the first n decisions the named site will make,
// without advancing its live sequence — the pure schedule a replay
// must reproduce.
func (p *Plane) Preview(kind SiteKind, site string, n int) []Decision {
	out := make([]Decision, n)
	for i := range out {
		out[i] = p.decideAt(site, uint64(i), kind.menu())
	}
	return out
}

// Counts is the plane's injection tally.
type Counts struct {
	Decisions uint64 `json:"decisions"`
	Latency   uint64 `json:"latency"`
	Drop      uint64 `json:"drop"`
	Truncate  uint64 `json:"truncate"`
	Garbage   uint64 `json:"garbage"`
	HTTP500   uint64 `json:"http500"`
	Store     uint64 `json:"storewrite"`
}

// Injected reports the total number of injected faults so far.
func (c Counts) Injected() uint64 {
	return c.Latency + c.Drop + c.Truncate + c.Garbage + c.HTTP500 + c.Store
}

// Counts snapshots the injection tally.
func (p *Plane) Counts() Counts {
	return Counts{
		Decisions: p.decisions.Load(),
		Latency:   p.injLatency.Load(),
		Drop:      p.injDrop.Load(),
		Truncate:  p.injTruncate.Load(),
		Garbage:   p.injGarbage.Load(),
		HTTP500:   p.inj5xx.Load(),
		Store:     p.injStore.Load(),
	}
}

// Report is the plane's replayable drill record: the schedule
// parameters, the per-site decision counts (with which the full
// schedule is reconstructible from the seed), the injection tally, and
// a bounded sample of the injected decisions in the order they fired.
type Report struct {
	Config   Config            `json:"config"`
	Counts   Counts            `json:"counts"`
	SiteSeqs map[string]uint64 `json:"site_seqs"`
	Schedule []Decision        `json:"schedule"`
}

// Report snapshots the plane for the drill artifact.
func (p *Plane) Report() Report {
	p.mu.Lock()
	defer p.mu.Unlock()
	seqs := make(map[string]uint64, len(p.sites))
	names := make([]string, 0, len(p.sites))
	for name := range p.sites {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		seqs[name] = p.sites[name].seq.Load()
	}
	sched := make([]Decision, len(p.schedule))
	copy(sched, p.schedule)
	return Report{Config: p.cfg, Counts: p.Counts(), SiteSeqs: seqs, Schedule: sched}
}

// ScheduleFor returns the recorded injections at one site, in firing
// order.
func (p *Plane) ScheduleFor(site string) []Decision {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Decision
	for _, d := range p.schedule {
		if d.Site == site {
			out = append(out, d)
		}
	}
	return out
}

// RegisterMetrics exports the plane's injection counters. The label
// space is the fixed fault enum.
func (p *Plane) RegisterMetrics(r *telemetry.Registry) {
	const help = "Faults injected by the chaos plane, by class."
	read := func(c *atomic.Uint64) func() float64 {
		return func() float64 { return float64(c.Load()) }
	}
	r.NewCounterFunc("optspeed_chaos_injected_total", help, read(&p.injLatency), telemetry.L("fault", string(FaultLatency)))
	r.NewCounterFunc("optspeed_chaos_injected_total", help, read(&p.injDrop), telemetry.L("fault", string(FaultDrop)))
	r.NewCounterFunc("optspeed_chaos_injected_total", help, read(&p.injTruncate), telemetry.L("fault", string(FaultTruncate)))
	r.NewCounterFunc("optspeed_chaos_injected_total", help, read(&p.injGarbage), telemetry.L("fault", string(FaultGarbage)))
	r.NewCounterFunc("optspeed_chaos_injected_total", help, read(&p.inj5xx), telemetry.L("fault", string(Fault5xx)))
	r.NewCounterFunc("optspeed_chaos_injected_total", help, read(&p.injStore), telemetry.L("fault", string(FaultStoreWrite)))
	r.NewCounterFunc("optspeed_chaos_decisions_total",
		"Injection-site decisions drawn from the chaos schedule.",
		func() float64 { return float64(p.decisions.Load()) })
	r.NewGaugeFunc("optspeed_chaos_seed", "Active chaos schedule seed.",
		func() float64 { return float64(p.cfg.Seed) })
}
