package telemetry

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func render(t *testing.T, r *Registry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.Bytes()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("optspeed_requests_total", "Requests served.", L("endpoint", "sweep"))
	c2 := r.NewCounter("optspeed_requests_total", "Requests served.", L("endpoint", "optimize"))
	g := r.NewGauge("optspeed_jobs_resident", "Resident jobs.")
	c.Add(41)
	c.Inc()
	c2.Inc()
	g.Set(7)
	g.Add(-2)
	out := string(render(t, r))
	want := strings.Join([]string{
		"# HELP optspeed_jobs_resident Resident jobs.",
		"# TYPE optspeed_jobs_resident gauge",
		"optspeed_jobs_resident 5",
		"# HELP optspeed_requests_total Requests served.",
		"# TYPE optspeed_requests_total counter",
		`optspeed_requests_total{endpoint="optimize"} 1`,
		`optspeed_requests_total{endpoint="sweep"} 42`,
		"",
	}, "\n")
	if out != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", out, want)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("optspeed_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)
	out := string(render(t, r))
	want := strings.Join([]string{
		"# HELP optspeed_latency_seconds Latency.",
		"# TYPE optspeed_latency_seconds histogram",
		`optspeed_latency_seconds_bucket{le="0.01"} 1`,
		`optspeed_latency_seconds_bucket{le="0.1"} 3`,
		`optspeed_latency_seconds_bucket{le="1"} 3`,
		`optspeed_latency_seconds_bucket{le="+Inf"} 4`,
		"optspeed_latency_seconds_sum 5.105",
		"optspeed_latency_seconds_count 4",
		"",
	}, "\n")
	if out != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", out, want)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("optspeed_weird_total", `Help with \backslash
and newline.`, L("tenant", "a\\b\"c\nd"))
	out := string(render(t, r))
	if !strings.Contains(out, `# HELP optspeed_weird_total Help with \\backslash\nand newline.`) {
		t.Fatalf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `optspeed_weird_total{tenant="a\\b\"c\nd"} 0`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
	if err := CheckExposition([]byte(out)); err != nil {
		t.Fatalf("escaped page fails conformance: %v", err)
	}
}

func TestFuncCollectors(t *testing.T) {
	r := NewRegistry()
	n := 3.0
	r.NewCounterFunc("optspeed_evals_total", "Evals.", func() float64 { return n })
	r.NewGaugeFunc("optspeed_cache_len", "Cache entries.", func() float64 { return 2 * n })
	out := string(render(t, r))
	if !strings.Contains(out, "optspeed_evals_total 3") || !strings.Contains(out, "optspeed_cache_len 6") {
		t.Fatalf("func collectors missing:\n%s", out)
	}
}

func TestRegistrationPanics(t *testing.T) {
	cases := map[string]func(r *Registry){
		"bad name":        func(r *Registry) { r.NewCounter("9bad", "h") },
		"bad label":       func(r *Registry) { r.NewCounter("ok_total", "h", L("9bad", "v")) },
		"reserved label":  func(r *Registry) { r.NewCounter("ok_total", "h", L("__internal", "v")) },
		"le on histogram": func(r *Registry) { r.NewHistogram("h_seconds", "h", []float64{1}, L("le", "x")) },
		"dup series": func(r *Registry) {
			r.NewCounter("dup_total", "h", L("a", "1"))
			r.NewCounter("dup_total", "h", L("a", "1"))
		},
		"type clash": func(r *Registry) {
			r.NewCounter("clash", "h")
			r.NewGauge("clash", "h")
		},
		"help clash": func(r *Registry) {
			r.NewCounter("hc_total", "one", L("a", "1"))
			r.NewCounter("hc_total", "two", L("a", "2"))
		},
		"unsorted buckets": func(r *Registry) { r.NewHistogram("ub_seconds", "h", []float64{1, 0.5}) },
		"bucket layout clash": func(r *Registry) {
			r.NewHistogram("bl_seconds", "h", []float64{1}, L("a", "1"))
			r.NewHistogram("bl_seconds", "h", []float64{2}, L("a", "2"))
		},
	}
	for name, f := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			f(NewRegistry())
		})
	}
}

// TestRegistryOutputConformance pins that whatever the registry
// renders, the strict checker accepts — the two halves of the
// conformance satellite agree.
func TestRegistryOutputConformance(t *testing.T) {
	r := NewRegistry()
	for _, ep := range []string{"sweep", "optimize", "jobs_submit"} {
		c := r.NewCounter("optspeed_http_requests_total", "Requests.", L("endpoint", ep))
		c.Add(uint64(len(ep)))
		h := r.NewHistogram("optspeed_http_request_duration_seconds", "Latency.",
			DefLatencyBuckets, L("endpoint", ep))
		for i := 0; i < 10; i++ {
			h.Observe(float64(i) * 0.013)
		}
	}
	r.NewGauge("optspeed_uptime_seconds", "Uptime.").Set(12.5)
	r.NewCounterFunc("optspeed_engine_evaluations_total", "Evals.", func() float64 { return 99 })
	out := render(t, r)
	if err := CheckExposition(out); err != nil {
		t.Fatalf("registry output fails conformance:\n%v\n%s", err, out)
	}
}

func TestCheckExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE": "foo_total 1\n",
		"unknown type":       "# TYPE foo wibble\nfoo 1\n",
		"duplicate TYPE":     "# TYPE foo counter\n# TYPE foo counter\nfoo 1\n",
		"duplicate series":   "# TYPE foo counter\nfoo 1\nfoo 2\n",
		"foreign sample":     "# TYPE foo counter\nbar 1\n",
		"bad value":          "# TYPE foo counter\nfoo x\n",
		"bad escape":         "# TYPE foo counter\nfoo{a=\"\\q\"} 1\n",
		"unquoted label":     "# TYPE foo counter\nfoo{a=1} 1\n",
		"bad label name":     "# TYPE foo counter\nfoo{9a=\"1\"} 1\n",
		"bucket not monotone": "# TYPE h histogram\n" +
			`h_bucket{le="0.1"} 5` + "\n" + `h_bucket{le="1"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n",
		"le not increasing": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\n" + `h_bucket{le="0.1"} 2` + "\n" +
			`h_bucket{le="+Inf"} 2` + "\nh_sum 1\nh_count 2\n",
		"missing +Inf": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\nh_sum 1\nh_count 1\n",
		"count mismatch": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 2\n",
		"missing sum": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 1` + "\nh_count 1\n",
		"second HELP": "# HELP foo a\n# HELP foo b\n# TYPE foo counter\nfoo 1\n",
	}
	for name, page := range cases {
		if err := CheckExposition([]byte(page)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, page)
		}
	}
	good := "# HELP h Latency.\n# TYPE h histogram\n" +
		`h_bucket{le="0.1"} 1` + "\n" + `h_bucket{le="+Inf"} 2` + "\n" +
		"h_sum 1.5\nh_count 2\n\n# TYPE foo counter\nfoo 1 1712345678901\n"
	if err := CheckExposition([]byte(good)); err != nil {
		t.Fatalf("valid page rejected: %v", err)
	}
}

// TestHotPathAllocs pins the tentpole's 0 allocs/op contract on the
// instrument hot paths.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("allocs_total", "h", L("endpoint", "x"))
	h := r.NewHistogram("allocs_seconds", "h", DefLatencyBuckets, L("endpoint", "x"))
	g := r.NewGauge("allocs_gauge", "h")
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.017) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(3) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op", n)
	}
}

// TestConcurrentInstruments hammers every instrument from many
// goroutines (race mode is where this earns its keep) and checks the
// totals land exactly.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("conc_total", "h")
	h := r.NewHistogram("conc_seconds", "h", []float64{0.5})
	g := r.NewGauge("conc_gauge", "h")
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(1)
				g.Add(1)
				if i%64 == 0 {
					var buf bytes.Buffer
					_ = r.WritePrometheus(&buf) // concurrent scrapes must be safe
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if h.Sum() != workers*per {
		t.Errorf("histogram sum = %v, want %d", h.Sum(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*per)
	}
	if err := CheckExposition(render(t, r)); err != nil {
		t.Fatalf("post-hammer page fails conformance: %v", err)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.NewCounter("bench_total", "h")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.NewHistogram("bench_seconds", "h", DefLatencyBuckets)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i%100) * 0.003)
			i++
		}
	})
}

func TestTracerRecordAndView(t *testing.T) {
	tr := NewTracer(TracerOptions{MaxTraces: 2, MaxSpansPerTrace: 3})
	ctxRoot, root := tr.StartRoot(t.Context(), "job", "", "")
	traceID := root.TraceID()
	if traceID == "" || root.SpanID() == "" {
		t.Fatal("root span ids empty")
	}
	if got := TraceIDFrom(ctxRoot); got != traceID {
		t.Fatalf("TraceIDFrom = %q, want %q", got, traceID)
	}
	_, child := StartSpan(ctxRoot, "shard")
	child.SetAttr("shard", "0")
	time.Sleep(2 * time.Millisecond)
	child.End()
	root.End()
	v, ok := tr.Trace(traceID)
	if !ok {
		t.Fatal("trace not resident")
	}
	if len(v.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(v.Spans))
	}
	var foundChild bool
	for _, sp := range v.Spans {
		if sp.Name == "shard" {
			foundChild = true
			if sp.ParentID != root.SpanID() {
				t.Errorf("child parent = %q, want %q", sp.ParentID, root.SpanID())
			}
			if sp.Duration <= 0 {
				t.Error("child duration not measured")
			}
			if len(sp.Attrs) != 1 || sp.Attrs[0].Key != "shard" {
				t.Errorf("child attrs = %v", sp.Attrs)
			}
		}
	}
	if !foundChild {
		t.Fatal("child span not recorded")
	}
	sum := v.Summary()
	if sum.Spans != 2 || sum.WallMs <= 0 || sum.CriticalPathMs <= 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.CriticalPathMs > sum.WallMs {
		t.Fatalf("critical path %v exceeds wall %v", sum.CriticalPathMs, sum.WallMs)
	}
}

func TestTracerBounds(t *testing.T) {
	tr := NewTracer(TracerOptions{MaxTraces: 2, MaxSpansPerTrace: 2})
	rec := func(trace string, n int) {
		for i := 0; i < n; i++ {
			tr.record(SpanRecord{TraceID: trace, SpanID: strconv.Itoa(i), Name: "s", Start: time.Now()})
		}
	}
	rec("t1", 1)
	rec("t2", 3) // one past the span bound
	if v, _ := tr.Trace("t2"); len(v.Spans) != 2 || v.Dropped != 1 {
		t.Fatalf("t2 spans=%d dropped=%d, want 2/1", len(v.Spans), v.Dropped)
	}
	rec("t3", 1) // evicts t1 (oldest)
	if _, ok := tr.Trace("t1"); ok {
		t.Fatal("t1 not evicted")
	}
	if _, ok := tr.Trace("t2"); !ok {
		t.Fatal("t2 evicted early")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if tr.tracesEvicted.Value() != 1 || tr.spansDropped.Value() != 1 {
		t.Fatalf("counters evicted=%d dropped=%d, want 1/1",
			tr.tracesEvicted.Value(), tr.spansDropped.Value())
	}
}

// TestNilTracerNoOps pins the nil-safety contract the call sites rely
// on: a nil tracer and nil spans must be inert, not panicky.
func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartRoot(t.Context(), "x", "", "")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	sp.SetAttr("k", "v")
	sp.End()
	if sp.TraceID() != "" || sp.SpanID() != "" {
		t.Fatal("nil span has ids")
	}
	if _, ok := tr.Trace("x"); ok {
		t.Fatal("nil tracer has traces")
	}
	if tr.Len() != 0 {
		t.Fatal("nil tracer non-empty")
	}
	// StartSpan without a span context is also inert.
	if _, child := StartSpan(ctx, "y"); child != nil {
		t.Fatal("StartSpan outside a trace returned a span")
	}
}

func TestRemoteParentAdoption(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	ctx, sp := tr.StartRoot(t.Context(), "sweep_stream", "cafebabecafebabe", "deadbeefdeadbeef")
	if sp.TraceID() != "cafebabecafebabe" {
		t.Fatalf("trace id = %q", sp.TraceID())
	}
	sp.End()
	v, ok := tr.Trace("cafebabecafebabe")
	if !ok || len(v.Spans) != 1 {
		t.Fatalf("remote trace not recorded: %v %d", ok, len(v.Spans))
	}
	if v.Spans[0].ParentID != "deadbeefdeadbeef" {
		t.Fatalf("parent = %q", v.Spans[0].ParentID)
	}
	if got := SpanIDFrom(ctx); got != sp.SpanID() {
		t.Fatalf("SpanIDFrom = %q, want %q", got, sp.SpanID())
	}
}

// TestSummaryCriticalPath builds a deterministic DAG and checks the
// numbers: root 100ms enveloping three leaf shards (60, 40, 20 ms,
// overlapping), so wall=100, critical path=60, serial=120.
func TestSummaryCriticalPath(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	v := TraceView{ID: "t", Spans: []SpanRecord{
		{TraceID: "t", SpanID: "root", Name: "job", Start: t0, Duration: ms(100)},
		{TraceID: "t", SpanID: "s0", ParentID: "root", Name: "shard", Start: t0.Add(ms(10)), Duration: ms(60)},
		{TraceID: "t", SpanID: "s1", ParentID: "root", Name: "shard", Start: t0.Add(ms(10)), Duration: ms(40)},
		{TraceID: "t", SpanID: "s2", ParentID: "root", Name: "shard", Start: t0.Add(ms(55)), Duration: ms(20)},
	}}
	sum := v.Summary()
	if sum.Spans != 4 {
		t.Fatalf("spans = %d", sum.Spans)
	}
	if sum.WallMs != 100 {
		t.Fatalf("wall = %v, want 100", sum.WallMs)
	}
	if sum.CriticalPathMs != 60 {
		t.Fatalf("critical path = %v, want 60", sum.CriticalPathMs)
	}
	if sum.SerialMs != 120 {
		t.Fatalf("serial = %v, want 120", sum.SerialMs)
	}
}

func TestConcurrentTracer(t *testing.T) {
	tr := NewTracer(TracerOptions{MaxTraces: 8})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, root := tr.StartRoot(t.Context(), "job", "", "")
				_, child := StartSpan(ctx, "shard")
				child.End()
				root.End()
				tr.Trace(root.TraceID())
				tr.Len()
			}
		}(w)
	}
	wg.Wait()
}
