package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// CheckExposition is a strict validator for Prometheus text exposition
// format 0.0.4 — the in-repo conformance oracle the registry's own
// output, the live /metrics endpoint, and optload -scrape snapshots
// are all checked against. It enforces more than a tolerant scraper
// would, on purpose:
//
//   - every sample belongs to a family announced by a preceding
//     # TYPE line (and at most one TYPE/HELP per family),
//   - metric and label names are well-formed, label values are
//     correctly quoted and escaped,
//   - no duplicate series anywhere on the page,
//   - each histogram series has strictly increasing le bounds with
//     nondecreasing cumulative counts, ends in le="+Inf", and carries
//     _sum and _count samples with _count equal to the +Inf bucket.
//
// A nil return means the page is clean; the error names the first
// offending line.
func CheckExposition(data []byte) error {
	c := &checker{
		typed:  make(map[string]string),
		helped: make(map[string]bool),
		series: make(map[string]bool),
		hists:  make(map[string]*histSeries),
	}
	lineNo := 0
	for len(data) > 0 {
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		lineNo++
		if err := c.line(string(line)); err != nil {
			return fmt.Errorf("exposition line %d: %w", lineNo, err)
		}
	}
	return c.finish()
}

// histSeries tracks one histogram series (family + non-le labels)
// across its bucket/_sum/_count samples.
type histSeries struct {
	lastLe   float64
	lastCum  float64
	firstLe  bool
	infVal   float64
	haveInf  bool
	sum      *float64
	count    *float64
	anyBound bool
}

type checker struct {
	family string            // most recent # TYPE subject
	typ    string            // its type
	typed  map[string]string // family -> type
	helped map[string]bool
	series map[string]bool
	hists  map[string]*histSeries
}

func (c *checker) line(line string) error {
	if strings.TrimSpace(line) == "" {
		return nil
	}
	if strings.HasPrefix(line, "#") {
		return c.comment(line)
	}
	return c.sample(line)
}

// comment handles # HELP / # TYPE metadata (other comments pass).
func (c *checker) comment(line string) error {
	rest, ok := strings.CutPrefix(line, "# ")
	if !ok {
		return nil // bare comment
	}
	switch {
	case strings.HasPrefix(rest, "HELP "):
		fields := strings.SplitN(rest[len("HELP "):], " ", 2)
		name := fields[0]
		if !validMetricName(name) {
			return fmt.Errorf("HELP for invalid metric name %q", name)
		}
		if c.helped[name] {
			return fmt.Errorf("second HELP line for %s", name)
		}
		c.helped[name] = true
		if len(fields) == 2 {
			if err := checkHelpEscapes(fields[1]); err != nil {
				return fmt.Errorf("HELP %s: %w", name, err)
			}
		}
	case strings.HasPrefix(rest, "TYPE "):
		fields := strings.Fields(rest[len("TYPE "):])
		if len(fields) != 2 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[0], fields[1]
		if !validMetricName(name) {
			return fmt.Errorf("TYPE for invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown TYPE %q for %s", typ, name)
		}
		if _, dup := c.typed[name]; dup {
			return fmt.Errorf("second TYPE line for %s", name)
		}
		c.typed[name] = typ
		c.family, c.typ = name, typ
	}
	return nil
}

// checkHelpEscapes rejects a raw backslash that is not part of a valid
// \\ or \n escape in HELP text.
func checkHelpEscapes(s string) error {
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			continue
		}
		if i+1 >= len(s) || (s[i+1] != '\\' && s[i+1] != 'n') {
			return fmt.Errorf("invalid escape at byte %d", i)
		}
		i++
	}
	return nil
}

// sample validates one sample line and attributes it to the current
// family.
func (c *checker) sample(line string) error {
	name, rest, err := splitName(line)
	if err != nil {
		return err
	}
	labels, rest, err := parseLabels(rest)
	if err != nil {
		return fmt.Errorf("series %s: %w", name, err)
	}
	valueStr := strings.TrimSpace(rest)
	if i := strings.IndexAny(valueStr, " \t"); i >= 0 {
		// Optional trailing timestamp: must be an integer.
		ts := strings.TrimSpace(valueStr[i:])
		valueStr = valueStr[:i]
		if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
			return fmt.Errorf("series %s: invalid timestamp %q", name, ts)
		}
	}
	value, err := parseValue(valueStr)
	if err != nil {
		return fmt.Errorf("series %s: %w", name, err)
	}

	// Attribution: the sample must belong to the family announced by
	// the nearest preceding TYPE line.
	if c.family == "" {
		return fmt.Errorf("sample %s before any # TYPE line", name)
	}
	base, suffix, ok := attributed(name, c.family, c.typ)
	if !ok {
		return fmt.Errorf("sample %s does not belong to # TYPE %s %s", name, c.family, c.typ)
	}

	sig := seriesSig(name, labels)
	if c.series[sig] {
		return fmt.Errorf("duplicate series %s", name)
	}
	c.series[sig] = true

	if c.typ != "histogram" {
		return nil
	}
	// Histogram bookkeeping keyed by the series without le.
	var le string
	nonLe := labels[:0:0]
	for _, l := range labels {
		if l.Name == "le" {
			if le != "" {
				return fmt.Errorf("series %s: repeated le label", name)
			}
			le = l.Value
			continue
		}
		nonLe = append(nonLe, l)
	}
	key := seriesSig(base, nonLe)
	h := c.hists[key]
	if h == nil {
		h = &histSeries{firstLe: true}
		c.hists[key] = h
	}
	switch suffix {
	case "_bucket":
		if le == "" {
			return fmt.Errorf("series %s: bucket sample without le label", name)
		}
		bound, err := parseValue(le)
		if err != nil {
			return fmt.Errorf("series %s: invalid le %q", name, le)
		}
		if math.IsInf(bound, 1) {
			if h.haveInf {
				return fmt.Errorf("series %s: repeated le=\"+Inf\" bucket", base)
			}
			h.haveInf, h.infVal = true, value
		} else {
			if h.haveInf {
				return fmt.Errorf("series %s: finite bucket after le=\"+Inf\"", base)
			}
			if !h.firstLe && bound <= h.lastLe {
				return fmt.Errorf("series %s: bucket bounds not increasing (le=%q after %v)", base, le, h.lastLe)
			}
			h.lastLe = bound
		}
		if value < h.lastCum {
			return fmt.Errorf("series %s: bucket counts not monotone (le=%q: %v < %v)", base, le, value, h.lastCum)
		}
		h.lastCum = value
		h.firstLe = false
		h.anyBound = true
	case "_sum":
		if h.sum != nil {
			return fmt.Errorf("series %s: repeated _sum", base)
		}
		h.sum = &value
	case "_count":
		if h.count != nil {
			return fmt.Errorf("series %s: repeated _count", base)
		}
		h.count = &value
	default:
		return fmt.Errorf("series %s: bare sample of histogram family %s", name, base)
	}
	return nil
}

// finish runs the end-of-page histogram completeness checks.
func (c *checker) finish() error {
	keys := make([]string, 0, len(c.hists))
	for k := range c.hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := c.hists[k]
		base := k
		if i := strings.IndexByte(base, '\xff'); i >= 0 {
			base = base[:i]
		}
		switch {
		case !h.anyBound && !h.haveInf:
			return fmt.Errorf("histogram %s: no buckets", base)
		case !h.haveInf:
			return fmt.Errorf("histogram %s: missing le=\"+Inf\" bucket", base)
		case h.sum == nil:
			return fmt.Errorf("histogram %s: missing _sum", base)
		case h.count == nil:
			return fmt.Errorf("histogram %s: missing _count", base)
		case *h.count != h.infVal:
			return fmt.Errorf("histogram %s: _count %v != le=\"+Inf\" bucket %v", base, *h.count, h.infVal)
		}
	}
	return nil
}

// attributed maps a sample name onto its family, honoring histogram
// suffixes. It returns the base family name and the suffix consumed.
func attributed(sample, fam, typ string) (base, suffix string, ok bool) {
	if typ == "histogram" {
		for _, sfx := range [...]string{"_bucket", "_sum", "_count"} {
			if sample == fam+sfx {
				return fam, sfx, true
			}
		}
		if sample == fam {
			return fam, "", true // caught as an error by the caller
		}
		return "", "", false
	}
	if sample == fam {
		return fam, "", true
	}
	return "", "", false
}

// splitName cuts the metric name off the front of a sample line.
func splitName(line string) (name, rest string, err error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	return name, line[i:], nil
}

// parseLabels consumes an optional {name="value",...} block.
func parseLabels(s string) ([]Label, string, error) {
	if !strings.HasPrefix(s, "{") {
		return nil, s, nil
	}
	s = s[1:]
	var labels []Label
	for {
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		i := 0
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i == len(s) {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		name := strings.TrimSpace(s[:i])
		if !validLabelName(name) {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		s = s[i+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("label %s: value not quoted", name)
		}
		value, rest, err := parseQuoted(s[1:])
		if err != nil {
			return nil, "", fmt.Errorf("label %s: %w", name, err)
		}
		labels = append(labels, Label{Name: name, Value: value})
		s = strings.TrimLeft(rest, " \t")
		switch {
		case strings.HasPrefix(s, ","):
			s = s[1:]
		case strings.HasPrefix(s, "}"):
			return labels, s[1:], nil
		default:
			return nil, "", fmt.Errorf("label %s: expected , or } after value", name)
		}
	}
}

// parseQuoted decodes a label value up to its closing quote, enforcing
// that backslashes only introduce the three legal escapes.
func parseQuoted(s string) (value, rest string, err error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\n':
			return "", "", fmt.Errorf("raw newline in label value")
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling backslash")
			}
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("invalid escape \\%c", s[i+1])
			}
			i++
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

// parseValue accepts the exposition float forms.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid value %q", s)
	}
	return v, nil
}

// seriesSig keys one series: name plus its sorted label pairs.
func seriesSig(name string, labels []Label) string {
	sorted := sortLabels(labels)
	var b strings.Builder
	b.WriteString(name)
	for _, l := range sorted {
		b.WriteByte('\xff')
		b.WriteString(l.Name)
		b.WriteByte('\xfe')
		b.WriteString(l.Value)
	}
	return b.String()
}
