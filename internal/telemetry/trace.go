package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Defaults for TracerOptions zero values.
const (
	// DefaultMaxTraces bounds resident traces; the oldest trace is
	// evicted FIFO when a new one arrives at capacity.
	DefaultMaxTraces = 512
	// DefaultMaxSpansPerTrace bounds one trace's recorded spans; spans
	// past the bound are counted as dropped, not stored. A maximum-size
	// distributed sweep records one span per shard plus a handful of
	// roots, so the default leaves ample headroom.
	DefaultMaxSpansPerTrace = 2048
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is one finished span as stored in the trace buffer.
type SpanRecord struct {
	TraceID  string
	SpanID   string
	ParentID string // "" for a root (or a remote parent not recorded here)
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
}

// End returns the span's end time.
func (r SpanRecord) End() time.Time { return r.Start.Add(r.Duration) }

// TracerOptions configures a Tracer.
type TracerOptions struct {
	// MaxTraces bounds resident traces; 0 means DefaultMaxTraces.
	MaxTraces int
	// MaxSpansPerTrace bounds one trace's stored spans; 0 means
	// DefaultMaxSpansPerTrace.
	MaxSpansPerTrace int
}

// Tracer records finished spans into a bounded ring of traces. The
// ring is FIFO over trace ids: when a span for a new trace arrives at
// capacity, the oldest resident trace is evicted whole. All methods
// are safe for concurrent use; a nil *Tracer is a valid no-op tracer
// (every method returns zero values), which is what lets callers
// thread one through unconditionally.
type Tracer struct {
	maxTraces int
	maxSpans  int

	mu     sync.Mutex
	traces map[string]*traceEntry
	ring   []string // trace ids in arrival order; head indexes the oldest
	head   int

	spansRecorded Counter
	spansDropped  Counter
	tracesEvicted Counter
}

type traceEntry struct {
	spans   []SpanRecord
	dropped int
}

// NewTracer builds a tracer.
func NewTracer(opts TracerOptions) *Tracer {
	maxTraces := opts.MaxTraces
	if maxTraces <= 0 {
		maxTraces = DefaultMaxTraces
	}
	maxSpans := opts.MaxSpansPerTrace
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpansPerTrace
	}
	return &Tracer{
		maxTraces: maxTraces,
		maxSpans:  maxSpans,
		traces:    make(map[string]*traceEntry, maxTraces),
		ring:      make([]string, 0, maxTraces),
	}
}

// NewID returns a 16-hex-char random id — the shared format for trace
// and span ids (and the same shape the jobs package mints). A host
// without entropy is broken; panic rather than hand out colliding ids.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("telemetry: id entropy unavailable: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// record stores one finished span.
func (t *Tracer) record(rec SpanRecord) {
	if t == nil || rec.TraceID == "" {
		return
	}
	t.mu.Lock()
	e := t.traces[rec.TraceID]
	if e == nil {
		if len(t.ring) < t.maxTraces {
			t.ring = append(t.ring, rec.TraceID)
		} else {
			delete(t.traces, t.ring[t.head])
			t.ring[t.head] = rec.TraceID
			t.head = (t.head + 1) % t.maxTraces
			t.tracesEvicted.Inc()
		}
		e = &traceEntry{}
		t.traces[rec.TraceID] = e
	}
	if len(e.spans) >= t.maxSpans {
		e.dropped++
		t.mu.Unlock()
		t.spansDropped.Inc()
		return
	}
	e.spans = append(e.spans, rec)
	t.mu.Unlock()
	t.spansRecorded.Inc()
}

// TraceView is one trace's recorded spans, sorted by start time (span
// id as tiebreak). Dropped counts spans lost to the per-trace bound.
type TraceView struct {
	ID      string
	Spans   []SpanRecord
	Dropped int
}

// Trace returns a copy of one resident trace.
func (t *Tracer) Trace(id string) (TraceView, bool) {
	if t == nil {
		return TraceView{}, false
	}
	t.mu.Lock()
	e := t.traces[id]
	if e == nil {
		t.mu.Unlock()
		return TraceView{}, false
	}
	v := TraceView{ID: id, Spans: append([]SpanRecord(nil), e.spans...), Dropped: e.dropped}
	t.mu.Unlock()
	sort.Slice(v.Spans, func(i, k int) bool {
		if !v.Spans[i].Start.Equal(v.Spans[k].Start) {
			return v.Spans[i].Start.Before(v.Spans[k].Start)
		}
		return v.Spans[i].SpanID < v.Spans[k].SpanID
	})
	return v, true
}

// Len returns the number of resident traces.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces)
}

// RegisterMetrics exports the tracer's own counters.
func (t *Tracer) RegisterMetrics(r *Registry) {
	r.NewCounterFunc("optspeed_trace_spans_recorded_total",
		"Spans recorded into the trace buffer.",
		func() float64 { return float64(t.spansRecorded.Value()) })
	r.NewCounterFunc("optspeed_trace_spans_dropped_total",
		"Spans dropped by the per-trace span bound.",
		func() float64 { return float64(t.spansDropped.Value()) })
	r.NewCounterFunc("optspeed_trace_traces_evicted_total",
		"Whole traces evicted FIFO from the bounded trace buffer.",
		func() float64 { return float64(t.tracesEvicted.Value()) })
	r.NewGaugeFunc("optspeed_trace_traces_resident",
		"Traces currently resident in the buffer.",
		func() float64 { return float64(t.Len()) })
}

// Summary condenses a trace for the job JSON block: wall time is the
// envelope of every span, the critical path is the longest
// leaf-to-completion chain (for the scatter–gather DAG: the slowest
// shard), and serial is the summed leaf work — the denominator of the
// DAG speedup bound (Gunther): serial/wall ≤ serial/critical-path.
type Summary struct {
	Spans          int
	Dropped        int
	WallMs         float64
	CriticalPathMs float64
	SerialMs       float64
}

// Summary computes the trace's DAG summary. Critical path is defined
// over recorded spans only: cp(s) = duration(s) for a leaf, else
// max over children of cp(child) — a parent's own duration already
// envelopes its children, so the recursion surfaces the longest chain
// of actual leaf work. Wall always bounds it from above because every
// leaf starts no earlier than the trace and ends no later.
func (v TraceView) Summary() Summary {
	s := Summary{Spans: len(v.Spans), Dropped: v.Dropped}
	if len(v.Spans) == 0 {
		return s
	}
	ids := make(map[string]int, len(v.Spans))
	for i, sp := range v.Spans {
		ids[sp.SpanID] = i
	}
	children := make(map[int][]int, len(v.Spans))
	isChild := make([]bool, len(v.Spans))
	for i, sp := range v.Spans {
		if sp.ParentID == "" {
			continue
		}
		if p, ok := ids[sp.ParentID]; ok && p != i {
			children[p] = append(children[p], i)
			isChild[i] = true
		}
	}
	earliest, latest := v.Spans[0].Start, v.Spans[0].End()
	var serial time.Duration
	for i, sp := range v.Spans {
		if sp.Start.Before(earliest) {
			earliest = sp.Start
		}
		if sp.End().After(latest) {
			latest = sp.End()
		}
		if len(children[i]) == 0 {
			serial += sp.Duration
		}
	}
	var cp func(i int) time.Duration
	cp = func(i int) time.Duration {
		kids := children[i]
		if len(kids) == 0 {
			return v.Spans[i].Duration
		}
		var longest time.Duration
		for _, k := range kids {
			if d := cp(k); d > longest {
				longest = d
			}
		}
		return longest
	}
	var critical time.Duration
	for i := range v.Spans {
		if !isChild[i] {
			if d := cp(i); d > critical {
				critical = d
			}
		}
	}
	s.WallMs = durMs(latest.Sub(earliest))
	s.CriticalPathMs = durMs(critical)
	s.SerialMs = durMs(serial)
	return s
}

func durMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Span is one in-flight operation. Spans are created by StartSpan /
// StartRoot, annotated with SetAttr, and recorded at End. A nil *Span
// is a valid no-op (the disabled-tracing path), so call sites never
// branch.
type Span struct {
	tracer *Tracer
	rec    SpanRecord
	clock  time.Time // monotonic start for the duration measurement
}

// TraceID returns the span's trace id ("" on a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.rec.TraceID
}

// SpanID returns the span's id ("" on a nil span).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.rec.SpanID
}

// SetAttr annotates the span. Later values for the same key ride
// along; readers see the last one first in sorted rendering.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.rec.Attrs = append(s.rec.Attrs, Attr{Key: key, Value: value})
}

// End measures the duration and records the span. End is not
// idempotent by design — call it exactly once; a defer is the usual
// shape.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.Duration = time.Since(s.clock)
	s.tracer.record(s.rec)
}
