package telemetry

import (
	"context"
	"time"
)

// Propagation headers: the trace context a coordinator forwards to
// peers alongside the deadline header, and the header a traced
// response echoes its trace id on.
const (
	// TraceIDHeader carries the trace id end to end.
	TraceIDHeader = "X-Trace-Id"
	// ParentSpanHeader carries the caller's span id — the remote
	// parent of the span the receiving server starts.
	ParentSpanHeader = "X-Parent-Span"
)

type ctxKey int

const (
	spanCtxKey ctxKey = iota
	requestIDCtxKey
)

// spanContext is the per-request trace state carried on context: which
// tracer records spans, which trace they belong to, and the current
// span (the parent of any span started next).
type spanContext struct {
	tracer  *Tracer
	traceID string
	spanID  string
}

// WithRequestID stashes the request id in the context so layers below
// the HTTP service (the job runner, the dispatch fan-out) can
// propagate it without importing the service package.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDCtxKey, id)
}

// RequestIDFrom returns the propagated request id, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDCtxKey).(string)
	return id
}

// TraceIDFrom returns the context's trace id, or "".
func TraceIDFrom(ctx context.Context) string {
	sc, _ := ctx.Value(spanCtxKey).(spanContext)
	return sc.traceID
}

// SpanIDFrom returns the current span's id, or "".
func SpanIDFrom(ctx context.Context) string {
	sc, _ := ctx.Value(spanCtxKey).(spanContext)
	return sc.spanID
}

// StartRoot starts a trace-entry span on this tracer: the HTTP
// middleware's per-request span and the job runner's per-job span.
// traceID and parentID adopt a propagated remote context when present
// (the peer side of a dispatch call); an empty traceID mints a fresh
// trace. A nil tracer returns ctx unchanged and a nil (no-op) span.
func (t *Tracer) StartRoot(ctx context.Context, name, traceID, parentID string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if traceID == "" {
		traceID = NewID()
		parentID = ""
	}
	sp := &Span{
		tracer: t,
		clock:  time.Now(),
		rec: SpanRecord{
			TraceID:  traceID,
			SpanID:   NewID(),
			ParentID: parentID,
			Name:     name,
		},
	}
	sp.rec.Start = sp.clock
	ctx = context.WithValue(ctx, spanCtxKey, spanContext{
		tracer:  t,
		traceID: traceID,
		spanID:  sp.rec.SpanID,
	})
	return ctx, sp
}

// StartSpan starts a child of the context's current span, using the
// tracer the context carries. Outside a traced request — no tracer on
// the context — it returns ctx unchanged and a nil span, so deep
// layers (dispatch shard runners) call it unconditionally with no
// configuration of their own.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	sc, ok := ctx.Value(spanCtxKey).(spanContext)
	if !ok || sc.tracer == nil {
		return ctx, nil
	}
	sp := &Span{
		tracer: sc.tracer,
		clock:  time.Now(),
		rec: SpanRecord{
			TraceID:  sc.traceID,
			SpanID:   NewID(),
			ParentID: sc.spanID,
			Name:     name,
		},
	}
	sp.rec.Start = sp.clock
	ctx = context.WithValue(ctx, spanCtxKey, spanContext{
		tracer:  sc.tracer,
		traceID: sc.traceID,
		spanID:  sp.rec.SpanID,
	})
	return ctx, sp
}
