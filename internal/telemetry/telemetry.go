// Package telemetry is the observability core: a dependency-free
// metrics registry with a Prometheus text-exposition writer, and
// request-scoped tracing with a bounded in-memory trace store.
//
// Metrics: counters, gauges, and fixed-bucket histograms whose hot
// paths are single atomic operations — zero allocations per Inc/Set/
// Observe — plus Func variants that read a value at scrape time, so
// subsystems that already keep their own atomic counters (the sweep
// engine, the WAL store, the admission gate) export without changing
// their hot paths. WritePrometheus renders the whole registry in
// text exposition format 0.0.4, deterministically ordered.
//
// Tracing: see trace.go. Context plumbing shared with the HTTP layer
// (request ids, span propagation) lives in context.go.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Label is one name/value pair attached to a metric series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// DefLatencyBuckets is the default latency histogram layout, in
// seconds: 100µs to 60s, roughly logarithmic — wide enough for a warm
// cache hit and a maximum-size distributed sweep to land in different
// buckets.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Counter is a monotonically increasing uint64. Inc/Add are one atomic
// add: zero allocations, safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down. Set is one atomic store;
// Add is a CAS loop over the float bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Observe is a linear scan
// over the (small, fixed) bound slice, one atomic add, and one CAS for
// the sum — no allocation, no lock.
type Histogram struct {
	bounds  []float64       // sorted upper bounds, exclusive of +Inf
	counts  []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sumBits atomic.Uint64   // float64 bits of the running sum
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// metric kinds, mapped onto exposition TYPE names.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one labeled series of a family. Exactly one of the value
// fields is set, matching the family's kind (fn covers both Func
// variants — the kind decides the TYPE line).
type child struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// family is one metric name: its metadata plus every labeled series.
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child
}

// Registry holds metric families and renders them. All methods are
// safe for concurrent use; instrument handles returned from the New*
// methods are valid forever.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validMetricName reports [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName reports [a-zA-Z_][a-zA-Z0-9_]*, excluding the
// reserved "__" prefix.
func validLabelName(s string) bool {
	if s == "" || (len(s) >= 2 && s[0] == '_' && s[1] == '_') {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// signature keys a label set inside a family. Labels are sorted by
// name first, so registration order never splits a series.
func signature(labels []Label) string {
	var b []byte
	for _, l := range labels {
		b = append(b, l.Name...)
		b = append(b, 0xff)
		b = append(b, l.Value...)
		b = append(b, 0xfe)
	}
	return string(b)
}

// sortLabels returns a name-sorted copy.
func sortLabels(labels []Label) []Label {
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, k int) bool { return out[i].Name < out[k].Name })
	return out
}

// register validates and returns the (family, series slot) for one
// instrument. Misuse — bad names, redefining a family with a different
// type or help, registering the same series twice — panics: these are
// programming errors at construction time, not runtime conditions.
func (r *Registry) register(name, help string, kind metricKind, buckets []float64, labels []Label) *child {
	if !validMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	labels = sortLabels(labels)
	for i, l := range labels {
		if !validLabelName(l.Name) {
			panic(fmt.Sprintf("telemetry: metric %s: invalid label name %q", name, l.Name))
		}
		if kind == kindHistogram && l.Name == "le" {
			panic(fmt.Sprintf("telemetry: metric %s: label \"le\" is reserved for histogram buckets", name))
		}
		if i > 0 && labels[i-1].Name == l.Name {
			panic(fmt.Sprintf("telemetry: metric %s: duplicate label name %q", name, l.Name))
		}
	}
	if kind == kindHistogram {
		if len(buckets) == 0 {
			panic(fmt.Sprintf("telemetry: histogram %s: no buckets", name))
		}
		for i, b := range buckets {
			if math.IsNaN(b) || math.IsInf(b, 0) {
				panic(fmt.Sprintf("telemetry: histogram %s: bucket bound %v is not finite (+Inf is implicit)", name, b))
			}
			if i > 0 && b <= buckets[i-1] {
				panic(fmt.Sprintf("telemetry: histogram %s: bucket bounds not strictly increasing at %v", name, b))
			}
		}
	}
	r.mu.Lock()
	f := r.families[name]
	if f == nil {
		f = &family{
			name:     name,
			help:     help,
			kind:     kind,
			buckets:  append([]float64(nil), buckets...),
			children: make(map[string]*child),
		}
		r.families[name] = f
	}
	r.mu.Unlock()
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s redefined as %s (was %s)", name, kind, f.kind))
	}
	if f.help != help {
		panic(fmt.Sprintf("telemetry: metric %s redefined with different help", name))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	sig := signature(labels)
	if _, dup := f.children[sig]; dup {
		panic(fmt.Sprintf("telemetry: duplicate series %s%s", name, renderLabels(nil, labels, "")))
	}
	c := &child{labels: labels}
	f.children[sig] = c
	return c
}

// NewCounter registers a counter series and returns its handle.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	c := r.register(name, help, kindCounter, nil, labels)
	c.counter = &Counter{}
	return c.counter
}

// NewGauge registers a gauge series and returns its handle.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	c := r.register(name, help, kindGauge, nil, labels)
	c.gauge = &Gauge{}
	return c.gauge
}

// NewHistogram registers a histogram series with the given upper
// bounds (+Inf is implicit) and returns its handle. Series of the same
// family must be registered with identical bounds.
func (r *Registry) NewHistogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	c := r.register(name, help, kindHistogram, buckets, labels)
	r.mu.Lock()
	fam := r.families[name]
	r.mu.Unlock()
	if len(fam.buckets) != len(buckets) {
		panic(fmt.Sprintf("telemetry: histogram %s: series registered with different bucket layout", name))
	}
	for i := range buckets {
		if fam.buckets[i] != buckets[i] {
			panic(fmt.Sprintf("telemetry: histogram %s: series registered with different bucket layout", name))
		}
	}
	c.hist = &Histogram{bounds: fam.buckets, counts: make([]atomic.Uint64, len(fam.buckets)+1)}
	return c.hist
}

// NewCounterFunc registers a counter series whose value is read from fn
// at scrape time — the bridge for subsystems that already maintain
// their own monotone counters. fn must be safe for concurrent use.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64, labels ...Label) {
	c := r.register(name, help, kindCounter, nil, labels)
	c.fn = fn
}

// NewGaugeFunc registers a gauge series read from fn at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64, labels ...Label) {
	c := r.register(name, help, kindGauge, nil, labels)
	c.fn = fn
}

// appendEscaped appends s with the exposition escapes: backslash and
// newline always, double quote when quote is set (label values).
func appendEscaped(b []byte, s string, quote bool) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\\':
			b = append(b, '\\', '\\')
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '"' && quote:
			b = append(b, '\\', '"')
		default:
			b = append(b, c)
		}
	}
	return b
}

// renderLabels appends a {name="value",...} block (empty labels render
// nothing). le, when non-empty, is appended as the trailing bucket
// label; leInf marks the +Inf bucket.
func renderLabels(b []byte, labels []Label, le string) []byte {
	if len(labels) == 0 && le == "" {
		return b
	}
	b = append(b, '{')
	for i, l := range labels {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, l.Name...)
		b = append(b, '=', '"')
		b = appendEscaped(b, l.Value, true)
		b = append(b, '"')
	}
	if le != "" {
		if len(labels) > 0 {
			b = append(b, ',')
		}
		b = append(b, `le="`...)
		b = append(b, le...)
		b = append(b, '"')
	}
	b = append(b, '}')
	return b
}

// formatBound renders a bucket bound the shortest way float64 allows.
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// appendFloat renders a sample value.
func appendFloat(b []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	case math.IsNaN(v):
		return append(b, "NaN"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// WritePrometheus renders every family in text exposition format
// 0.0.4: families sorted by name, series sorted by label signature,
// one HELP and one TYPE line per family. The whole page is built in
// one buffer and written with a single Write.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b []byte
	for _, f := range fams {
		b = f.render(b)
	}
	_, err := w.Write(b)
	return err
}

// render appends one family's HELP/TYPE block and every series.
func (f *family) render(b []byte) []byte {
	f.mu.Lock()
	sigs := make([]string, 0, len(f.children))
	for sig := range f.children {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	children := make([]*child, 0, len(sigs))
	for _, sig := range sigs {
		children = append(children, f.children[sig])
	}
	f.mu.Unlock()
	if len(children) == 0 {
		return b
	}
	b = append(b, "# HELP "...)
	b = append(b, f.name...)
	b = append(b, ' ')
	b = appendEscaped(b, f.help, false)
	b = append(b, '\n')
	b = append(b, "# TYPE "...)
	b = append(b, f.name...)
	b = append(b, ' ')
	b = append(b, f.kind.String()...)
	b = append(b, '\n')
	for _, c := range children {
		switch {
		case c.hist != nil:
			b = f.renderHistogram(b, c)
		default:
			b = append(b, f.name...)
			b = renderLabels(b, c.labels, "")
			b = append(b, ' ')
			switch {
			case c.counter != nil:
				b = strconv.AppendUint(b, c.counter.Value(), 10)
			case c.gauge != nil:
				b = appendFloat(b, c.gauge.Value())
			default:
				b = appendFloat(b, c.fn())
			}
			b = append(b, '\n')
		}
	}
	return b
}

// renderHistogram appends one series' cumulative buckets, sum, and
// count. Bucket counts are loaded once and accumulated, so the emitted
// cumulative sequence is monotone and le="+Inf" equals _count by
// construction even under concurrent observes.
func (f *family) renderHistogram(b []byte, c *child) []byte {
	h := c.hist
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		b = append(b, f.name...)
		b = append(b, "_bucket"...)
		b = renderLabels(b, c.labels, formatBound(bound))
		b = append(b, ' ')
		b = strconv.AppendUint(b, cum, 10)
		b = append(b, '\n')
	}
	cum += h.counts[len(h.bounds)].Load()
	b = append(b, f.name...)
	b = append(b, "_bucket"...)
	b = renderLabels(b, c.labels, "+Inf")
	b = append(b, ' ')
	b = strconv.AppendUint(b, cum, 10)
	b = append(b, '\n')
	b = append(b, f.name...)
	b = append(b, "_sum"...)
	b = renderLabels(b, c.labels, "")
	b = append(b, ' ')
	b = appendFloat(b, h.Sum())
	b = append(b, '\n')
	b = append(b, f.name...)
	b = append(b, "_count"...)
	b = renderLabels(b, c.labels, "")
	b = append(b, ' ')
	b = strconv.AppendUint(b, cum, 10)
	b = append(b, '\n')
	return b
}
