// Package optspeed reproduces Nicol & Willard, "Problem Size, Parallel
// Architecture, and Optimal Speedup" (ICPP 1987 / ICASE 87-7): an
// analytic performance model for parallel iterative elliptic PDE solvers
// that predicts, for a given grid size, stencil, partition shape, and
// parallel architecture, the optimal number of processors and the optimal
// speedup.
//
// The package is a facade over the implementation packages:
//
//   - the cost model and optimizers (internal/core),
//   - stencils and their perimeter counts k(P,S) (internal/stencil),
//   - strip and working-rectangle decompositions (internal/partition),
//   - a dense grid with Jacobi/SOR kernels (internal/grid),
//   - a real goroutine parallel solver (internal/solver),
//   - discrete-event architecture simulators (internal/simarch),
//   - the sharded, memoizing parallel sweep engine (internal/sweep),
//   - the HTTP optimization service served by cmd/optspeedd
//     (internal/service),
//   - the paper's figures/tables as runnable experiments, which generate
//     their point grids through the sweep engine (internal/experiments).
//
// # Quick start
//
//	p := optspeed.NewProblem(512, optspeed.FivePoint, optspeed.Square)
//	bus := optspeed.DefaultSyncBus(0) // 0 = unbounded processors
//	alloc, err := optspeed.Optimize(p, bus)
//	// alloc.Procs is the optimal processor count; alloc.Speedup the
//	// optimal speedup; alloc.Interior reports a strictly interior
//	// optimum (possible only on buses).
//
// The model's headline results: hypercube and mesh machines want all
// processors (or exactly one) and scale speedup linearly in the grid
// size n²; banyan switching networks scale as n²/log n; shared buses
// admit interior optima and scale only as (n²)^{1/3} for square
// partitions and (n²)^{1/4} for strips. See DESIGN.md and EXPERIMENTS.md
// for the full reproduction.
package optspeed
