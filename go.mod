module optspeed

go 1.22
